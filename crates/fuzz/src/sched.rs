//! Coverage accounting and the corpus scheduler of the guided campaign.
//!
//! [`og_vm::Coverage`] answers "which blocks of *this* program ran" —
//! a per-program view that cannot be compared across the thousands of
//! distinct programs a campaign executes. This module projects those
//! per-program bitmaps into one **global abstract feature space** so
//! coverage accumulates campaign-wide, AFL-style:
//!
//! * an **instruction feature** abstracts one executed instruction to
//!   its shape — operation (with comparison/condition kind), width,
//!   operand kinds, the two's-complement *significance class* of its
//!   immediate, displacement presence — hashed into the low half of the
//!   map. Two programs that both execute a 3-byte-immediate `add` light
//!   the same feature; a program executing a shape nothing else reached
//!   lights a new one. The significance class in the key makes the
//!   operand-gating paper's own axis (how many bytes of an operand
//!   matter) a first-class coverage dimension;
//! * an **adjacency feature** hashes each *consecutive pair* of executed
//!   instruction shapes inside a block into the high half — the
//!   edge-pair signal that distinguishes novel instruction orderings
//!   (spliced blocks, jittered widths) even when every individual shape
//!   is already known.
//!
//! Features come only from **covered** blocks (the [`og_vm::Coverage`]
//! bitmap gates the projection), so dead code contributes nothing.
//!
//! [`Corpus`] keeps every input whose feature set grew the map, records
//! *which* features were new (its claim to a corpus slot), offers
//! recency-biased picks to the mutator, and minimizes itself at end of
//! run by greedy set cover — the classic corpus-distillation step that
//! keeps total coverage while dropping entries whose features are
//! subsumed.

use og_program::Program;
use og_vm::{fnv1a, Coverage, FlatProgram};
use std::sync::Arc;

/// Feature indices `0..BLOCK_FEATURES` hold instruction-shape features;
/// `BLOCK_FEATURES..TOTAL_FEATURES` hold adjacency (edge-pair) features.
pub const BLOCK_FEATURES: u32 = 1 << 16;
/// Total size of the global feature space.
pub const TOTAL_FEATURES: u32 = 1 << 17;

/// A campaign-global coverage map: one bit per abstract feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureMap {
    words: Vec<u64>,
}

impl Default for FeatureMap {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureMap {
    /// An empty map.
    pub fn new() -> FeatureMap {
        FeatureMap { words: vec![0; (TOTAL_FEATURES as usize) / 64] }
    }

    /// Set every feature in `feats`, returning how many were new.
    pub fn observe(&mut self, feats: &[u32]) -> usize {
        let mut new = 0;
        for &f in feats {
            let (w, b) = (f as usize / 64, f as usize % 64);
            if self.words[w] & (1 << b) == 0 {
                self.words[w] |= 1 << b;
                new += 1;
            }
        }
        new
    }

    /// Would [`FeatureMap::observe`] light at least one new feature?
    pub fn would_grow(&self, feats: &[u32]) -> bool {
        feats.iter().any(|&f| self.words[f as usize / 64] & (1 << (f as usize % 64)) == 0)
    }

    /// Union another map into this one (shard merge).
    pub fn merge(&mut self, other: &FeatureMap) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Distinct instruction-shape (block-level) features covered — the
    /// campaign's `blocks_covered` metric.
    pub fn blocks_covered(&self) -> usize {
        self.words[..(BLOCK_FEATURES as usize) / 64].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Distinct adjacency (edge-pair) features covered — the campaign's
    /// `edges_covered` metric.
    pub fn edges_covered(&self) -> usize {
        self.words[(BLOCK_FEATURES as usize) / 64..].iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Two's-complement significance of a value in bytes (1..=8): how many
/// low bytes are needed to represent it exactly. The mutation module
/// targets the classes (3, 5, 6, 7) the generator's interesting-value
/// pool never produces.
fn sig_class(v: i64) -> u8 {
    let m = (v ^ (v >> 63)) as u64; // fold negatives onto their magnitude
    ((65 - m.leading_zeros()).div_ceil(8)) as u8
}

/// The abstract shape hash of one instruction (before reduction into the
/// feature space).
fn inst_shape(inst: &og_isa::Inst) -> u64 {
    let mut key = [0u8; 8];
    key[0] = match inst.op {
        og_isa::Op::Cmp(k) => 0x40 | k as u8,
        og_isa::Op::Cmov(c) => 0x50 | c as u8,
        og_isa::Op::Bc(c) => 0x60 | c as u8,
        og_isa::Op::Ld { signed } => 0x70 | signed as u8,
        op => op.class().index() as u8 | ((op.mnemonic().len() as u8) << 4),
    };
    // Disambiguate same-class same-mnemonic-length ops by first letter.
    key[1] = inst.op.mnemonic().as_bytes()[0];
    key[2] = inst.width as u8;
    key[3] = inst.src1.is_some() as u8;
    key[4] = match inst.src2 {
        og_isa::Operand::None => 0,
        og_isa::Operand::Reg(_) => 1,
        og_isa::Operand::Imm(v) => 2 + sig_class(v),
    };
    key[5] = (inst.disp != 0) as u8;
    key[6] = inst.dst.is_some() as u8;
    fnv1a(&key)
}

/// Project one executed case into the global feature space: instruction
/// and adjacency features of every **covered** block, sorted and
/// deduplicated. `flat` must be the lowering of `program` (its dense
/// block table maps coverage indices back to blocks) and `cov` a
/// coverage bitmap read from a run of it.
pub fn case_features(program: &Program, flat: &FlatProgram, cov: &Coverage) -> Vec<u32> {
    let mut feats = Vec::new();
    for idx in cov.iter_hit() {
        let (f, b) = flat.block_of(idx);
        let block = program.func(f).block(b);
        let mut prev: Option<u64> = None;
        for inst in &block.insts {
            let shape = inst_shape(inst);
            feats.push((shape % BLOCK_FEATURES as u64) as u32);
            if let Some(p) = prev {
                let pair = fnv1a(&[p.to_le_bytes(), shape.to_le_bytes()].concat());
                feats.push(BLOCK_FEATURES + (pair % BLOCK_FEATURES as u64) as u32);
            }
            prev = Some(shape);
        }
    }
    feats.sort_unstable();
    feats.dedup();
    feats
}

/// One kept corpus entry: a program that grew coverage when admitted.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The program.
    pub program: Arc<Program>,
    /// The rng-stream seed of the shard that found it (provenance).
    pub seed: u64,
    /// The fuel it replays under (certificate bound for generated seeds,
    /// screen-derived budget for mutants).
    pub max_steps: u64,
    /// Its full projected feature set.
    pub feats: Vec<u32>,
    /// The features that were new when it was admitted — its claim to a
    /// corpus slot.
    pub new_feats: Vec<u32>,
    /// Did it come out of the mutator (vs a fresh generate)?
    pub from_mutation: bool,
}

/// The evolving corpus of one campaign shard: a feature map plus every
/// entry that grew it.
#[derive(Debug, Default)]
pub struct Corpus {
    map: FeatureMap,
    entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus { map: FeatureMap::new(), entries: Vec::new() }
    }

    /// The accumulated feature map.
    pub fn map(&self) -> &FeatureMap {
        &self.map
    }

    /// The kept entries, in admission order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Admit `entry` if its features grow the map; returns whether it
    /// was kept (and fills in its `new_feats` when so).
    pub fn admit(&mut self, mut entry: CorpusEntry) -> bool {
        let new: Vec<u32> = entry
            .feats
            .iter()
            .copied()
            .filter(|&f| self.map.words[f as usize / 64] & (1 << (f as usize % 64)) == 0)
            .collect();
        if new.is_empty() {
            return false;
        }
        self.map.observe(&entry.feats);
        entry.new_feats = new;
        self.entries.push(entry);
        true
    }

    /// Pick an entry to mutate, biased toward recent admissions (the
    /// frontier of the search). Deterministic in the rng stream.
    pub fn pick<'a>(&'a self, rng: &mut og_program::rng::SplitMix64) -> Option<&'a CorpusEntry> {
        if self.entries.is_empty() {
            return None;
        }
        let n = self.entries.len() as u64;
        // min of two uniform draws skews small; indexing from the back
        // skews recent.
        let back = rng.below(n).min(rng.below(n));
        Some(&self.entries[(n - 1 - back) as usize])
    }

    /// Merge another shard's corpus into this one: entries are re-offered
    /// in the other's admission order, each kept only if it still grows
    /// the combined map.
    pub fn absorb(&mut self, other: Corpus) {
        for e in other.entries {
            self.admit(e);
        }
    }

    /// Greedy set-cover minimization: indices (into
    /// [`Corpus::entries`]) of a subset that covers every feature the
    /// whole corpus covers, built by repeatedly taking the entry with
    /// the most still-uncovered features. The classic corpus
    /// distillation step — total coverage is preserved by construction,
    /// and entries whose features became subsumed by later finds drop
    /// out.
    pub fn minimized(&self) -> Vec<usize> {
        let mut covered = FeatureMap::new();
        let mut kept = Vec::new();
        let mut remaining: Vec<usize> = (0..self.entries.len()).collect();
        loop {
            let best = remaining
                .iter()
                .map(|&i| {
                    let gain = self.entries[i]
                        .feats
                        .iter()
                        .filter(|&&f| {
                            covered.words[f as usize / 64] & (1 << (f as usize % 64)) == 0
                        })
                        .count();
                    (gain, i)
                })
                .filter(|&(gain, _)| gain > 0)
                // max_by_key takes the *last* maximum; (gain, Reverse(i))
                // would be clearer but usize keeps it simple: prefer the
                // earliest entry on ties by comparing on (gain, -i).
                .max_by_key(|&(gain, i)| (gain, usize::MAX - i));
            match best {
                Some((_, i)) => {
                    covered.observe(&self.entries[i].feats);
                    kept.push(i);
                    remaining.retain(|&r| r != i);
                }
                None => break,
            }
        }
        kept.sort_unstable();
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_program::generate::{generate_with_bound, GenConfig};
    use og_vm::{RunConfig, Vm};

    fn run_features(seed: u64) -> (Arc<Program>, Vec<u32>, u64) {
        let (p, bound) = generate_with_bound(&GenConfig { seed, ..Default::default() });
        let mut vm =
            Vm::new_verified(&p, RunConfig { max_steps: bound, ..Default::default() }).unwrap();
        vm.run().unwrap();
        let feats = case_features(&p, vm.flat_program(), &vm.coverage());
        (Arc::new(p), feats, bound)
    }

    #[test]
    fn features_are_deterministic_nonempty_and_in_range() {
        let (_, a, _) = run_features(3);
        let (_, b, _) = run_features(3);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|&f| f < TOTAL_FEATURES));
        assert!(a.iter().any(|&f| f < BLOCK_FEATURES), "no instruction features?");
        assert!(a.iter().any(|&f| f >= BLOCK_FEATURES), "no adjacency features?");
    }

    #[test]
    fn sig_class_matches_twos_complement_significance() {
        for (v, want) in [
            (0i64, 1u8),
            (127, 1),
            (-128, 1),
            (128, 2),
            (-129, 2),
            (0xFFFF, 3), // needs a third byte for the sign
            (0x7FFF, 2),
            (0x80_0000 - 1, 3),
            (0x80_0000, 4),
            (i64::MAX, 8),
            (i64::MIN, 8),
        ] {
            assert_eq!(sig_class(v), want, "sig_class({v})");
        }
    }

    #[test]
    fn corpus_admits_only_growth_and_minimizes_without_losing_coverage() {
        let mut corpus = Corpus::new();
        let mut admitted = 0;
        for seed in 0..24 {
            let (p, feats, bound) = run_features(seed);
            let entry = CorpusEntry {
                program: p,
                seed,
                max_steps: bound,
                feats,
                new_feats: Vec::new(),
                from_mutation: false,
            };
            let kept = corpus.admit(entry.clone());
            if kept {
                admitted += 1;
                assert!(!corpus.entries().last().unwrap().new_feats.is_empty());
                // Re-offering the identical entry must be rejected.
                assert!(!corpus.admit(entry));
            }
        }
        assert!(admitted >= 2, "24 distinct seeds grew coverage only {admitted} times");
        let before_blocks = corpus.map().blocks_covered();
        let before_edges = corpus.map().edges_covered();
        let kept = corpus.minimized();
        assert!(kept.len() <= corpus.entries().len());
        let mut remap = FeatureMap::new();
        for &i in &kept {
            remap.observe(&corpus.entries()[i].feats);
        }
        assert_eq!(remap.blocks_covered(), before_blocks, "minimization lost block coverage");
        assert_eq!(remap.edges_covered(), before_edges, "minimization lost edge coverage");
    }

    #[test]
    fn recency_biased_pick_is_deterministic_and_reaches_old_entries() {
        let mut corpus = Corpus::new();
        for seed in 0..16 {
            let (p, feats, bound) = run_features(seed);
            corpus.admit(CorpusEntry {
                program: p,
                seed,
                max_steps: bound,
                feats,
                new_feats: Vec::new(),
                from_mutation: false,
            });
        }
        let n = corpus.entries().len();
        assert!(n >= 2);
        let mut rng = og_program::rng::SplitMix64::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            seen.insert(corpus.pick(&mut rng).unwrap().seed);
        }
        assert!(seen.len() > n / 2, "pick barely explores the corpus: {seen:?}");
    }
}
