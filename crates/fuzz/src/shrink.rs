//! Greedy structural shrinking of failing programs.
//!
//! Given a program on which some predicate holds (in the campaign: "the
//! differential oracle rejects it"), repeatedly try structure-preserving
//! simplifications and keep each one under which the predicate still
//! holds. Every candidate is re-verified before the predicate runs, so
//! shrinking can never escape the space of well-formed programs.
//!
//! The edit schedule is deterministic (fixed pass order, fixed
//! within-pass order), so one failing seed always shrinks to the same
//! reproducer — a property the test suite pins.
//!
//! Edits tried, in fixpoint rounds until no edit lands or the budget is
//! exhausted:
//!
//! 1. **gut blocks** — drop all non-terminator instructions of a block;
//! 2. **drop instructions** — remove single non-terminator instructions
//!    (scanned back to front, so dead tails vanish in one round);
//! 3. **simplify branches** — rewrite a conditional branch as an
//!    unconditional `br` to its taken (then fall-through) target;
//! 4. **narrow constants** — replace immediates with `0`, `1` or half
//!    their value, and displacements with `0`;
//! 5. **zero data** — replace a data item's bytes with zeros (length is
//!    preserved: addresses must not shift).

use og_isa::{Inst, Operand, Target};
use og_program::Program;

/// Shrink `program` while `still_fails` keeps returning `true`.
///
/// `budget` caps predicate invocations (each is a full oracle run in the
/// campaign). The input program itself must satisfy the predicate.
///
/// # Panics
///
/// Panics if `still_fails(program)` is `false` on entry.
pub fn shrink(
    program: &Program,
    still_fails: &mut dyn FnMut(&Program) -> bool,
    budget: usize,
) -> Program {
    assert!(still_fails(program), "shrink() needs a failing program to start from");
    let mut best = program.clone();
    let mut left = budget;

    // One predicate call against a candidate edit; returns true (and
    // commits) when the candidate is well-formed and still failing.
    fn attempt(
        best: &mut Program,
        candidate: Program,
        still_fails: &mut dyn FnMut(&Program) -> bool,
        left: &mut usize,
    ) -> bool {
        if *left == 0 || candidate.verify().is_err() {
            return false;
        }
        *left -= 1;
        if still_fails(&candidate) {
            *best = candidate;
            true
        } else {
            false
        }
    }

    loop {
        let mut progressed = false;

        // Pass 1+2: gut whole blocks, then single instructions.
        for fi in 0..best.funcs.len() {
            for bi in (0..best.funcs[fi].blocks.len()).rev() {
                let body_len = best.funcs[fi].blocks[bi].insts.len();
                if body_len > 1 {
                    let mut candidate = best.clone();
                    let insts = &mut candidate.funcs[fi].blocks[bi].insts;
                    insts.drain(..body_len - 1);
                    if attempt(&mut best, candidate, still_fails, &mut left) {
                        progressed = true;
                        continue;
                    }
                }
                for ii in (0..best.funcs[fi].blocks[bi].insts.len().saturating_sub(1)).rev() {
                    let mut candidate = best.clone();
                    candidate.funcs[fi].blocks[bi].insts.remove(ii);
                    progressed |= attempt(&mut best, candidate, still_fails, &mut left);
                }
            }
        }

        // Pass 3: conditional branch → unconditional br.
        for fi in 0..best.funcs.len() {
            for bi in 0..best.funcs[fi].blocks.len() {
                let last = best.funcs[fi].blocks[bi].insts.len() - 1;
                let inst = best.funcs[fi].blocks[bi].insts[last];
                if let Target::CondBlocks { taken, fall } = inst.target {
                    for dest in [taken, fall] {
                        let mut candidate = best.clone();
                        candidate.funcs[fi].blocks[bi].insts[last] = Inst::br(dest);
                        if attempt(&mut best, candidate, still_fails, &mut left) {
                            progressed = true;
                            break;
                        }
                    }
                }
            }
        }

        // Pass 4: narrow constants and displacements.
        for fi in 0..best.funcs.len() {
            for bi in 0..best.funcs[fi].blocks.len() {
                for ii in 0..best.funcs[fi].blocks[bi].insts.len() {
                    let inst = best.funcs[fi].blocks[bi].insts[ii];
                    if let Operand::Imm(v) = inst.src2 {
                        for smaller in [0, 1, v / 2] {
                            if smaller == v {
                                continue;
                            }
                            let mut candidate = best.clone();
                            candidate.funcs[fi].blocks[bi].insts[ii].src2 = Operand::Imm(smaller);
                            if attempt(&mut best, candidate, still_fails, &mut left) {
                                progressed = true;
                                break;
                            }
                        }
                    }
                    if best.funcs[fi].blocks[bi].insts[ii].disp != 0 {
                        let mut candidate = best.clone();
                        candidate.funcs[fi].blocks[bi].insts[ii].disp = 0;
                        progressed |= attempt(&mut best, candidate, still_fails, &mut left);
                    }
                }
            }
        }

        // Pass 5: zero data items (lengths and addresses preserved).
        for item_idx in 0..best.data.items().len() {
            let item = &best.data.items()[item_idx];
            if item.bytes.iter().all(|&b| b == 0) {
                continue;
            }
            let mut candidate = best.clone();
            let mut seg = og_program::DataSegment::new();
            for (i, it) in best.data.items().iter().enumerate() {
                let bytes = if i == item_idx { vec![0; it.bytes.len()] } else { it.bytes.clone() };
                seg.define(&it.name, bytes);
            }
            candidate.data = seg;
            progressed |= attempt(&mut best, candidate, still_fails, &mut left);
        }

        if !progressed || left == 0 {
            break;
        }
    }
    best
}

/// Convenience for tests and tools: shrink against a pure predicate.
pub fn shrink_with(
    program: &Program,
    mut predicate: impl FnMut(&Program) -> bool,
    budget: usize,
) -> Program {
    shrink(program, &mut predicate, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_isa::{Op, Reg, Width};
    use og_program::generate::{generate_program, GenConfig};
    use og_program::{imm, ProgramBuilder};

    fn has_mul(p: &Program) -> bool {
        p.insts().any(|(_, i)| i.op == Op::Mul)
    }

    #[test]
    fn shrinks_to_nearly_nothing_under_a_trivial_predicate() {
        let mut pb = ProgramBuilder::new();
        pb.data_quads("tbl", &[7, 8, 9]);
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 1000);
        f.add(Width::W, Reg::T1, Reg::T0, imm(17));
        f.mul(Width::W, Reg::T2, Reg::T1, Reg::T1);
        f.sub(Width::W, Reg::T3, Reg::T2, imm(4));
        f.out(Width::B, Reg::T3);
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let shrunk = shrink_with(&p, has_mul, 500);
        assert!(has_mul(&shrunk));
        // Everything except the mul and the terminator is removable.
        assert_eq!(shrunk.inst_count(), 2, "{shrunk:?}");
    }

    #[test]
    fn shrinking_generated_programs_is_deterministic_and_minimizing() {
        for seed in [3u64, 11, 19] {
            let p = generate_program(&GenConfig { seed, ..Default::default() });
            if !has_mul(&p) {
                continue;
            }
            let a = shrink_with(&p, has_mul, 1500);
            let b = shrink_with(&p, has_mul, 1500);
            assert_eq!(a, b, "seed {seed}: shrinking must be deterministic");
            assert!(has_mul(&a));
            assert!(
                a.inst_count() * 4 <= p.inst_count(),
                "seed {seed}: {} -> {} insts is not much of a shrink",
                p.inst_count(),
                a.inst_count()
            );
        }
    }

    #[test]
    fn budget_is_respected() {
        let p = generate_program(&GenConfig { seed: 5, ..Default::default() });
        let mut calls = 0usize;
        let shrunk = shrink_with(
            &p,
            |_| {
                calls += 1;
                true
            },
            10,
        );
        // 1 entry check + at most 10 candidate checks.
        assert!(calls <= 11, "{calls}");
        assert!(shrunk.verify().is_ok());
    }

    #[test]
    #[should_panic(expected = "failing program")]
    fn rejects_a_passing_program() {
        let p = generate_program(&GenConfig { seed: 1, ..Default::default() });
        let _ = shrink_with(&p, |_| false, 10);
    }
}
