//! The campaign engine: configuration, the [`Campaign`] builder, and the
//! random and coverage-guided case loops.
//!
//! A campaign comes in two modes, selected by
//! [`CampaignConfig::coverage`]:
//!
//! * **random** — the original fixed-budget loop: `cases` independently
//!   generated programs, each judged by the differential oracle, with a
//!   batched re-execution phase at the end;
//! * **guided** — the corpus-evolving loop. Case execution is sharded
//!   across an [`og_lab::WorkerPool`], one deterministic rng stream per
//!   shard. Each shard interleaves fresh generation with structural
//!   mutation of its corpus ([`crate::mutate`]), screens every input
//!   with a fuel-bounded trusted run, projects the run's
//!   [`og_vm::Coverage`] into the global feature space
//!   ([`crate::sched`]), skips duplicate oracle work via a shared
//!   `(program digest, coverage signature)` set, judges survivors with
//!   the same differential oracle, and admits oracle-green inputs that
//!   lit new features into its corpus — which subsequent mutation draws
//!   from, closing the evolution loop. At end of run the shard corpora
//!   merge and the combined corpus is minimized by greedy set cover.
//!
//! Guided mode also runs a **random baseline at equal budget** (same
//! shard seeds, same case count, generation only) so every
//! `BENCH_fuzz.json` carries the guided-vs-random coverage comparison
//! the CI gate checks.
//!
//! ## Termination certificates and mutant fuel
//!
//! Generated programs carry a step-bound certificate, so the oracle
//! runs them with exactly that fuel and any `OutOfFuel` is a real bug.
//! Mutants have **no** certificate: the screen run bounds them by
//! [`CampaignConfig::mutant_fuel`], non-terminating mutants are
//! discarded (counted, not failed), and the oracle judges survivors
//! under `4 × screen_steps + 1024` — inside the oracle's step-window
//! tolerance for every legitimate transform run, so a mutant can only
//! fail the oracle for reasons that are really the system's fault.

use crate::sched::{self, Corpus, CorpusEntry, FeatureMap};
use crate::{
    case_gen_config, case_oracle_config, corpus, fault_cross_check, mutate, shrink, sim_cross_check,
};
use og_core::oracle::{check_program, OracleConfig, OracleOutcome};
use og_json::{Json, ToJson};
use og_lab::{run_batch, BatchJob, WorkerPool};
use og_program::generate::generate_with_bound;
use og_program::rng::SplitMix64;
use og_program::Program;
use og_vm::{fnv1a, RunConfig, Vm};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Configuration of one fuzzing campaign. Build one through [`Campaign`];
/// the fields stay public so tests and tools can inspect what a builder
/// produced.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed of the campaign; case streams derive from it.
    pub base_seed: u64,
    /// Number of cases (guided mode splits them across shards).
    pub cases: u64,
    /// Run the fused-vs-materialized simulator cross-check on every Nth
    /// case (0 disables it).
    pub sim_check_every: u64,
    /// Replay every Nth passing case under one seeded soft error and
    /// check the fault classifier's soundness both ways
    /// ([`crate::fault_cross_check`]; 0 disables it).
    pub fault_check_every: u64,
    /// Shrink-step budget (oracle invocations) when a case fails.
    pub shrink_budget: usize,
    /// Run the coverage-guided corpus-evolving loop instead of the
    /// fixed-budget random loop.
    pub coverage: bool,
    /// Worker shards for the guided loop (0 = the pool's default
    /// parallelism).
    pub shards: usize,
    /// Screening fuel for mutants, which carry no termination
    /// certificate; a mutant still running after this many steps is
    /// discarded, not reported.
    pub mutant_fuel: u64,
    /// In the guided loop, roughly one case in `fresh_every` is a fresh
    /// generate instead of a mutation (mutation also falls back to
    /// fresh generation while the corpus is empty).
    pub fresh_every: u64,
    /// Where failure reproducers are written; `None` uses
    /// [`corpus::failure_dir`] (which honours `OG_FUZZ_FAIL_DIR`).
    pub fail_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            base_seed: 0x06_F0_22,
            cases: 500,
            sim_check_every: 8,
            fault_check_every: 16,
            shrink_budget: 800,
            coverage: false,
            shards: 0,
            mutant_fuel: 200_000,
            // A 50/50 fresh/mutate split measures best: half the budget
            // re-tracks the generator's breadth (which is high — the
            // shape knobs vary per index), half exploits the corpus for
            // the features generation cannot reach. Mutate-heavier
            // ratios lose more generator breadth than mutation wins
            // back (measured by `guided_vs_random_diag`).
            fresh_every: 2,
            fail_dir: None,
        }
    }
}

/// Builder for a fuzzing campaign — the one entry point to og-fuzz.
///
/// ```no_run
/// use og_fuzz::Campaign;
///
/// let summary = Campaign::new(0xC0FFEE)
///     .cases(2000)
///     .coverage(true)
///     .fail_dir("/tmp/og-fuzz-failures")
///     .run();
/// assert!(summary.failure.is_none());
/// ```
///
/// Environment variables are not consulted unless the caller opts in
/// with [`Campaign::overrides_from_env`] — one explicit layer instead of
/// config functions that read the process environment behind the
/// caller's back.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    cfg: CampaignConfig,
}

impl CampaignConfig {
    /// Read `OG_FUZZ_CASES` / `OG_FUZZ_SEED` over the defaults.
    #[deprecated(note = "use `Campaign::new(seed).overrides_from_env()` — the builder makes the \
                         environment layer explicit")]
    pub fn from_env() -> CampaignConfig {
        Campaign::default().overrides_from_env().cfg
    }
}

impl Campaign {
    /// A campaign with the given seed and default knobs.
    pub fn new(seed: u64) -> Campaign {
        Campaign { cfg: CampaignConfig { base_seed: seed, ..Default::default() } }
    }

    /// A campaign from an explicit config (escape hatch for replaying a
    /// config captured elsewhere).
    pub fn from_config(cfg: CampaignConfig) -> Campaign {
        Campaign { cfg }
    }

    /// Number of cases to run.
    pub fn cases(mut self, n: u64) -> Campaign {
        self.cfg.cases = n;
        self
    }

    /// Enable (or disable) the coverage-guided corpus-evolving loop.
    pub fn coverage(mut self, on: bool) -> Campaign {
        self.cfg.coverage = on;
        self
    }

    /// Directory failure reproducers are saved to.
    pub fn fail_dir(mut self, dir: impl Into<PathBuf>) -> Campaign {
        self.cfg.fail_dir = Some(dir.into());
        self
    }

    /// Simulator cross-check period (0 disables).
    pub fn sim_check_every(mut self, n: u64) -> Campaign {
        self.cfg.sim_check_every = n;
        self
    }

    /// Fault-classifier soundness check period (0 disables).
    pub fn fault_check_every(mut self, n: u64) -> Campaign {
        self.cfg.fault_check_every = n;
        self
    }

    /// Shrink budget on failure.
    pub fn shrink_budget(mut self, n: usize) -> Campaign {
        self.cfg.shrink_budget = n;
        self
    }

    /// Worker shards for the guided loop (0 = default parallelism).
    pub fn shards(mut self, n: usize) -> Campaign {
        self.cfg.shards = n;
        self
    }

    /// Screening fuel for mutants.
    pub fn mutant_fuel(mut self, steps: u64) -> Campaign {
        self.cfg.mutant_fuel = steps.max(1);
        self
    }

    /// Fresh-generation share of the guided loop: roughly one case in
    /// `n` is a fresh generate instead of a corpus mutation.
    pub fn fresh_every(mut self, n: u64) -> Campaign {
        self.cfg.fresh_every = n.max(1);
        self
    }

    /// The explicit environment layer: reads `OG_FUZZ_CASES`,
    /// `OG_FUZZ_SEED`, `OG_FUZZ_COVERAGE` (0/1), `OG_FUZZ_SHARDS`,
    /// `OG_FUZZ_FAULT_EVERY` and `OG_FUZZ_FAIL_DIR` over the builder's
    /// current values. Call it last (or not at all — nothing else in
    /// the crate touches the environment).
    pub fn overrides_from_env(mut self) -> Campaign {
        if let Some(cases) = crate::env_u64("OG_FUZZ_CASES") {
            self.cfg.cases = cases;
        }
        if let Some(every) = crate::env_u64("OG_FUZZ_FAULT_EVERY") {
            self.cfg.fault_check_every = every;
        }
        if let Some(seed) = crate::env_u64("OG_FUZZ_SEED") {
            self.cfg.base_seed = seed;
        }
        if let Some(cov) = crate::env_u64("OG_FUZZ_COVERAGE") {
            self.cfg.coverage = cov != 0;
        }
        if let Some(shards) = crate::env_u64("OG_FUZZ_SHARDS") {
            self.cfg.shards = shards as usize;
        }
        if let Some(dir) = std::env::var_os("OG_FUZZ_FAIL_DIR") {
            self.cfg.fail_dir = Some(PathBuf::from(dir));
        }
        self
    }

    /// The config this builder will run.
    pub fn config(&self) -> &CampaignConfig {
        &self.cfg
    }

    /// Run the campaign.
    pub fn run(&self) -> CampaignSummary {
        if self.cfg.coverage {
            run_guided(&self.cfg)
        } else {
            run_random(&self.cfg)
        }
    }
}

/// One failing case, after shrinking.
#[derive(Debug)]
pub struct CaseFailure {
    /// The rng-stream seed the case came from (`base_seed + index` in
    /// random mode; the shard's stream seed in guided mode, where a
    /// mutant is a function of the whole stream, not one draw).
    pub seed: u64,
    /// Case index within its stream (random mode: the campaign; guided
    /// mode: the shard).
    pub index: u64,
    /// The oracle's verdict on the *original* program.
    pub error: String,
    /// The shrunk reproducer.
    pub reproducer: Program,
    /// Static instructions before and after shrinking.
    pub insts: (usize, usize),
    /// Where the reproducer was saved (when saving succeeded).
    pub saved_to: Option<PathBuf>,
}

/// Aggregate results of a campaign.
#[derive(Debug, Default)]
pub struct CampaignSummary {
    /// Cases run.
    pub cases: u64,
    /// Committed instructions across all baseline runs.
    pub total_base_steps: u64,
    /// Static instructions across all generated programs.
    pub total_insts: u64,
    /// Instructions narrowed across all VRP transform runs.
    pub narrowed: u64,
    /// Specializations applied across all VRS transform runs.
    pub specializations: u64,
    /// Simulator cross-checks performed.
    pub sim_checks: u64,
    /// Fault-classifier soundness replays performed
    /// ([`crate::fault_cross_check`]).
    pub fault_checks: u64,
    /// Passing cases re-executed through the batched engine at the end
    /// of the campaign (0 when the campaign failed before that phase).
    pub batch_checked: u64,
    /// Was this the coverage-guided loop?
    pub guided: bool,
    /// Distinct instruction-shape features covered across every screened
    /// execution of the guided loop (not just admitted corpus entries).
    pub blocks_covered: u64,
    /// Distinct adjacency (edge-pair) features covered across every
    /// screened execution of the guided loop.
    pub edges_covered: u64,
    /// Block features the equal-budget random baseline covered (guided
    /// mode).
    pub blocks_covered_random: u64,
    /// Edge features the equal-budget random baseline covered (guided
    /// mode).
    pub edges_covered_random: u64,
    /// Corpus entries kept during the run (guided mode).
    pub corpus_size: u64,
    /// Corpus entries surviving end-of-run set-cover minimization.
    pub corpus_minimized: u64,
    /// Mutation attempts that produced a verified mutant.
    pub mutants_tried: u64,
    /// Mutants that were oracle-green *and* lit new coverage.
    pub mutants_kept: u64,
    /// Mutants discarded by the fuel screen (no termination
    /// certificate — expected weather, not failures).
    pub discarded: u64,
    /// Cases skipped as exact duplicates (same program digest and
    /// coverage signature already judged).
    pub dup_skipped: u64,
    /// Screening/coverage VM executions performed by the guided loop.
    pub execs: u64,
    /// Guided-loop executions per wall-clock second.
    pub execs_per_sec: f64,
    /// The failure, if the campaign found one (each stream stops at its
    /// first).
    pub failure: Option<CaseFailure>,
}

impl CampaignSummary {
    /// The campaign summary as JSON (the `BENCH_fuzz` report CI collects).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cases".to_string(), self.cases.to_json()),
            ("total_base_steps".to_string(), self.total_base_steps.to_json()),
            ("total_static_insts".to_string(), self.total_insts.to_json()),
            ("vrp_narrowed".to_string(), self.narrowed.to_json()),
            ("vrs_specializations".to_string(), self.specializations.to_json()),
            ("sim_cross_checks".to_string(), self.sim_checks.to_json()),
            ("fault_cross_checks".to_string(), self.fault_checks.to_json()),
            ("batch_cross_checked".to_string(), self.batch_checked.to_json()),
            ("guided".to_string(), Json::Bool(self.guided)),
            ("failed".to_string(), Json::Bool(self.failure.is_some())),
        ];
        if self.guided {
            fields.extend([
                ("blocks_covered".to_string(), self.blocks_covered.to_json()),
                ("blocks_covered_guided".to_string(), self.blocks_covered.to_json()),
                ("blocks_covered_random".to_string(), self.blocks_covered_random.to_json()),
                ("edges_covered".to_string(), self.edges_covered.to_json()),
                ("edges_covered_random".to_string(), self.edges_covered_random.to_json()),
                ("corpus_size".to_string(), self.corpus_size.to_json()),
                ("corpus_size_minimized".to_string(), self.corpus_minimized.to_json()),
                ("mutants_tried".to_string(), self.mutants_tried.to_json()),
                ("mutants_kept".to_string(), self.mutants_kept.to_json()),
                ("discarded".to_string(), self.discarded.to_json()),
                ("dup_skipped".to_string(), self.dup_skipped.to_json()),
                ("execs".to_string(), self.execs.to_json()),
                (
                    "execs_per_sec".to_string(),
                    Json::Num((self.execs_per_sec * 10.0).round() / 10.0),
                ),
            ]);
        }
        if let Some(f) = &self.failure {
            fields.push(("failure_seed".into(), f.seed.to_json()));
            fields.push(("failure_index".into(), f.index.to_json()));
            fields.push(("failure_error".into(), f.error.to_json()));
        }
        Json::Obj(fields)
    }
}

/// How a case failed: the differential oracle, the simulator
/// fused-vs-materialized cross-check, the batched re-execution, or the
/// fault-classifier soundness replay.
pub(crate) enum CaseError {
    Oracle(og_core::oracle::OracleError),
    Sim(String),
    Batch(String),
    Fault(String),
}

impl CaseError {
    /// A stable signature of the failure mode (variant + transform, no
    /// volatile detail). Shrinking only keeps edits under which the
    /// candidate still fails with this exact signature, so a reproducer
    /// for a VRP miscompile cannot drift into, say, an unrelated
    /// fuel-exhaustion failure.
    pub(crate) fn signature(&self) -> String {
        match self {
            CaseError::Oracle(e) => format!("oracle:{}", e.signature()),
            CaseError::Sim(_) => "sim".to_string(),
            CaseError::Batch(_) => "batch".to_string(),
            CaseError::Fault(_) => "fault".to_string(),
        }
    }

    fn message(&self) -> String {
        match self {
            CaseError::Oracle(e) => e.to_string(),
            CaseError::Sim(m) | CaseError::Batch(m) | CaseError::Fault(m) => m.clone(),
        }
    }
}

/// The failure signature a candidate program exhibits, if any. The
/// simulator cross-check only runs when the oracle passes — mirroring
/// the campaign's own order, so original and candidate signatures are
/// comparable.
pub(crate) fn candidate_signature(p: &Program, oracle_cfg: &OracleConfig) -> Option<String> {
    match check_program(p, oracle_cfg) {
        Err(e) => Some(CaseError::Oracle(e).signature()),
        Ok(_) => sim_cross_check(p, oracle_cfg.max_steps)
            .err()
            .map(|m| CaseError::Sim(m).signature())
            .or_else(|| {
                crate::batch_cross_check(p, oracle_cfg.max_steps)
                    .err()
                    .map(|m| CaseError::Batch(m).signature())
            })
            .or_else(|| {
                // A classifier-soundness bug is a property of the
                // machinery, not of one specific strike, so a fixed
                // shrink-time seed keeps the signature comparable
                // across candidates.
                crate::fault_cross_check(p, oracle_cfg.max_steps, SHRINK_FAULT_SEED)
                    .err()
                    .map(|m| CaseError::Fault(m).signature())
            }),
    }
}

/// The fixed fault seed [`candidate_signature`] replays candidates
/// under while shrinking a `fault`-signature failure.
pub(crate) const SHRINK_FAULT_SEED: u64 = 0xFA_CC;

/// Shrink a failing case and persist the reproducer into the campaign's
/// failure directory.
pub(crate) fn shrink_failure(
    cfg: &CampaignConfig,
    oracle_cfg: &OracleConfig,
    index: u64,
    seed: u64,
    program: Program,
    error: CaseError,
) -> CaseFailure {
    let before = program.inst_count();
    let signature = error.signature();
    let error = error.message();
    // An edit survives only if the candidate still fails in the same way
    // as the original: failing *differently* (e.g. an introduced infinite
    // loop hitting the fuel bound) would shrink toward the wrong bug.
    let mut still_fails = |candidate: &Program| -> bool {
        candidate_signature(candidate, oracle_cfg).as_deref() == Some(signature.as_str())
    };
    let reproducer = shrink::shrink(&program, &mut still_fails, cfg.shrink_budget);
    let after = reproducer.inst_count();
    let case = corpus::CorpusCase {
        name: format!("shrunk-seed-{seed}-{index}"),
        seed: Some(seed),
        note: format!("campaign failure at index {index}: {error}"),
        // Bound-sensitive failures only reproduce under the same fuel.
        max_steps: Some(oracle_cfg.max_steps),
        program: reproducer.clone(),
    };
    let dir = cfg.fail_dir.clone().unwrap_or_else(corpus::failure_dir);
    let saved_to = match corpus::save_failure_to(&dir, &case) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("could not save reproducer: {e}");
            None
        }
    };
    CaseFailure { seed, index, error, reproducer, insts: (before, after), saved_to }
}

/// A case the oracle passed, retained for the end-of-campaign batch
/// phase: what the batched engine must reproduce.
struct PassingCase {
    index: u64,
    seed: u64,
    program: Arc<Program>,
    max_steps: u64,
    base_steps: u64,
    base_digest: u64,
}

/// The original fixed-budget random loop (see the crate docs): one
/// generated case per index, stop at the first failure, batched
/// re-execution at the end.
fn run_random(cfg: &CampaignConfig) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    let mut passing: Vec<PassingCase> = Vec::new();
    for index in 0..cfg.cases {
        let gen_cfg = case_gen_config(cfg.base_seed, index);
        let (program, bound) = generate_with_bound(&gen_cfg);
        let oracle_cfg = case_oracle_config(bound);
        summary.cases += 1;
        summary.total_insts += program.inst_count() as u64;

        let sim_checked = cfg.sim_check_every != 0 && index % cfg.sim_check_every == 0;
        let fault_checked = cfg.fault_check_every != 0 && index % cfg.fault_check_every == 0;
        let verdict: Result<OracleOutcome, CaseError> =
            check_program(&program, &oracle_cfg).map_err(CaseError::Oracle).and_then(|outcome| {
                if sim_checked {
                    summary.sim_checks += 1;
                    sim_cross_check(&program, bound).map_err(CaseError::Sim)?;
                }
                if fault_checked {
                    summary.fault_checks += 1;
                    fault_cross_check(&program, bound, gen_cfg.seed ^ index)
                        .map_err(CaseError::Fault)?;
                }
                Ok(outcome)
            });

        match verdict {
            Ok(outcome) => {
                summary.total_base_steps += outcome.base_steps;
                summary.narrowed += outcome.narrowed as u64;
                summary.specializations += outcome.specializations as u64;
                passing.push(PassingCase {
                    index,
                    seed: gen_cfg.seed,
                    program: Arc::new(program),
                    max_steps: oracle_cfg.max_steps,
                    base_steps: outcome.base_steps,
                    base_digest: outcome.base_digest,
                });
            }
            Err(error) => {
                summary.failure =
                    Some(shrink_failure(cfg, &oracle_cfg, index, gen_cfg.seed, program, error));
                break;
            }
        }
    }
    if summary.failure.is_none() {
        batch_phase(cfg, &passing, &mut summary);
    }
    summary
}

/// End-of-campaign batch phase: every passing case re-executes through
/// the fused+batched no-stats engine, sharded across a worker pool, and
/// must land on the oracle's step count and output digest. This is the
/// campaign-wide differential for the og-serve fast path.
fn batch_phase(cfg: &CampaignConfig, passing: &[PassingCase], summary: &mut CampaignSummary) {
    if passing.is_empty() {
        return;
    }
    let pool = WorkerPool::with_default_parallelism();
    let jobs: Vec<BatchJob> = passing
        .iter()
        .map(|c| {
            let config = RunConfig { max_steps: c.max_steps, ..Default::default() };
            BatchJob::verified(Arc::clone(&c.program), config).expect("oracle-passing cases verify")
        })
        .collect();
    let results = run_batch(&pool, jobs);
    summary.batch_checked = passing.len() as u64;
    for (case, slot) in passing.iter().zip(results) {
        let mismatch = match slot {
            None => Some("batch shard lost to a worker panic".to_string()),
            Some(Err(e)) => Some(format!("batched run failed: {e}")),
            Some(Ok(outcome)) => {
                if outcome.steps != case.base_steps {
                    Some(format!(
                        "batched steps {} != oracle baseline {}",
                        outcome.steps, case.base_steps
                    ))
                } else if outcome.output_digest != case.base_digest {
                    Some(format!(
                        "batched digest {:#x} != oracle baseline {:#x}",
                        outcome.output_digest, case.base_digest
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(what) = mismatch {
            let oracle_cfg = case_oracle_config(case.max_steps);
            summary.failure = Some(shrink_failure(
                cfg,
                &oracle_cfg,
                case.index,
                case.seed,
                (*case.program).clone(),
                CaseError::Batch(what),
            ));
            break;
        }
    }
}

/// The rng-stream seed of shard `s`: the golden-ratio multiple keeps
/// streams far apart while shard 0 replays the plain base seed.
fn shard_seed(base_seed: u64, shard: usize) -> u64 {
    base_seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Split `total` cases across `shards` as evenly as possible.
fn shard_split(total: u64, shards: usize) -> Vec<u64> {
    let shards = shards.max(1) as u64;
    (0..shards).map(|s| total / shards + u64::from(s < total % shards)).collect()
}

/// Everything one guided shard sends back to the campaign.
struct ShardReport {
    shard: usize,
    summary: CampaignSummary,
    corpus: Corpus,
    /// Every feature any screened execution of this shard lit — the
    /// shard's total observed coverage. The corpus map only counts
    /// *admitted* entries (it drives interestingness and minimization);
    /// the campaign-level guided-vs-random comparison must instead count
    /// everything the loop executed, exactly like the random baseline
    /// counts everything it executed.
    seen: FeatureMap,
    passing: Vec<PassingCase>,
}

/// The canonical content digest of a program (FNV-1a over its canonical
/// JSON rendering) — the program half of the dedup key.
fn program_digest(p: &Program) -> u64 {
    fnv1a(og_json::render(&p.to_json()).expect("programs render").as_bytes())
}

/// One shard of the guided loop. Fully deterministic given
/// `(cfg, shard, n_cases)` except for the shared dedup set, which only
/// skips duplicate *oracle work* — and a cross-shard duplicate requires
/// two different rng streams to produce byte-identical programs with
/// identical coverage.
fn run_guided_shard(
    cfg: &CampaignConfig,
    shard: usize,
    n_cases: u64,
    dedup: &Mutex<HashSet<(u64, u64)>>,
) -> ShardReport {
    let sseed = shard_seed(cfg.base_seed, shard);
    let mut rng = SplitMix64::new(sseed ^ 0x5EED);
    let mut corpus = Corpus::new();
    let mut seen = FeatureMap::new();
    let mut summary = CampaignSummary { guided: true, ..Default::default() };
    let mut passing: Vec<PassingCase> = Vec::new();

    for index in 0..n_cases {
        summary.cases += 1;
        // --- pick: mutate the corpus, or generate fresh -------------
        let mut fresh_bound = None;
        let mut program = None;
        if !corpus.entries().is_empty() && !rng.chance(1, cfg.fresh_every.max(1)) {
            let parent = corpus.pick(&mut rng).expect("corpus non-empty").program.clone();
            let donor = corpus.pick(&mut rng).expect("corpus non-empty").program.clone();
            if let Some(m) = mutate::mutate(&parent, Some(&donor), &mut rng, 8) {
                summary.mutants_tried += 1;
                program = Some(m);
            }
        }
        let program = program.unwrap_or_else(|| {
            let (p, bound) = generate_with_bound(&case_gen_config(sseed, index));
            fresh_bound = Some(bound);
            p
        });
        let is_mutant = fresh_bound.is_none();
        summary.total_insts += program.inst_count() as u64;

        // --- screen: fuel-bounded trusted run, coverage read --------
        // Certificate fuel for generated programs; the configured budget
        // for mutants, which carry no certificate.
        let screen_fuel = fresh_bound.unwrap_or(cfg.mutant_fuel);
        let run_cfg = RunConfig { max_steps: screen_fuel, ..Default::default() };
        let screen = match Vm::new_verified(&program, run_cfg) {
            Ok(mut vm) => {
                summary.execs += 1;
                match vm.run() {
                    Ok(outcome) => {
                        let cov = vm.coverage();
                        Some((
                            outcome.steps,
                            cov.signature(),
                            sched::case_features(&program, vm.flat_program(), &cov),
                        ))
                    }
                    Err(_) if is_mutant => {
                        // No certificate, no verdict: a mutant that blows
                        // the screen budget is discarded, not reported.
                        summary.discarded += 1;
                        continue;
                    }
                    // A *generated* program failing its certified bound
                    // is a real bug; fall through and let the oracle
                    // classify it.
                    Err(_) => None,
                }
            }
            // Mutants are verified at creation and generated programs
            // must verify by construction — a failure here is the
            // `base-verify` bug class; let the oracle report it.
            Err(_) => None,
        };

        // --- dedup: skip oracle work already done on this exact
        // (program, coverage) pair anywhere in the campaign ------------
        let (feats, interesting) = match &screen {
            Some((_, cov_sig, feats)) => {
                seen.observe(feats);
                let key = (program_digest(&program), *cov_sig);
                if !dedup.lock().expect("dedup lock").insert(key) {
                    summary.dup_skipped += 1;
                    continue;
                }
                let interesting = corpus.map().would_grow(feats);
                (feats.clone(), interesting)
            }
            None => (Vec::new(), false),
        };

        // --- judge: the differential oracle stays the judge ----------
        // Mutant fuel: 4× the screened step count plus slack keeps every
        // legitimate transform run (the oracle tolerates up to
        // `4 × base + 512` steps) inside the budget.
        let oracle_fuel = fresh_bound
            .unwrap_or_else(|| screen.as_ref().map_or(cfg.mutant_fuel, |s| s.0) * 4 + 1024);
        let oracle_cfg = case_oracle_config(oracle_fuel);
        let sim_checked = cfg.sim_check_every != 0 && index % cfg.sim_check_every == 0;
        let fault_checked = cfg.fault_check_every != 0 && index % cfg.fault_check_every == 0;
        let verdict: Result<OracleOutcome, CaseError> =
            check_program(&program, &oracle_cfg).map_err(CaseError::Oracle).and_then(|outcome| {
                if sim_checked {
                    summary.sim_checks += 1;
                    sim_cross_check(&program, oracle_fuel).map_err(CaseError::Sim)?;
                }
                if fault_checked {
                    summary.fault_checks += 1;
                    fault_cross_check(&program, oracle_fuel, sseed ^ index)
                        .map_err(CaseError::Fault)?;
                }
                Ok(outcome)
            });

        match verdict {
            Ok(outcome) => {
                summary.total_base_steps += outcome.base_steps;
                summary.narrowed += outcome.narrowed as u64;
                summary.specializations += outcome.specializations as u64;
                let program = Arc::new(program);
                passing.push(PassingCase {
                    index,
                    seed: sseed,
                    program: Arc::clone(&program),
                    max_steps: oracle_cfg.max_steps,
                    base_steps: outcome.base_steps,
                    base_digest: outcome.base_digest,
                });
                // --- evolve: oracle-green inputs that lit new features
                // join the corpus and become mutation bases ------------
                if interesting {
                    let kept = corpus.admit(CorpusEntry {
                        program,
                        seed: sseed,
                        max_steps: oracle_cfg.max_steps,
                        feats,
                        new_feats: Vec::new(),
                        from_mutation: is_mutant,
                    });
                    if kept && is_mutant {
                        summary.mutants_kept += 1;
                    }
                }
            }
            Err(error) => {
                summary.failure =
                    Some(shrink_failure(cfg, &oracle_cfg, index, sseed, program, error));
                break;
            }
        }
    }
    ShardReport { shard, summary, corpus, seen, passing }
}

/// Equal-budget random coverage baseline for one shard: the same seed
/// stream and case count as the guided shard, but generation only — no
/// corpus, no mutation — and no oracle (only coverage is measured).
fn random_baseline_shard(cfg: &CampaignConfig, shard: usize, n_cases: u64) -> FeatureMap {
    let sseed = shard_seed(cfg.base_seed, shard);
    let mut map = FeatureMap::new();
    for index in 0..n_cases {
        let (program, bound) = generate_with_bound(&case_gen_config(sseed, index));
        let run_cfg = RunConfig { max_steps: bound, ..Default::default() };
        if let Ok(mut vm) = Vm::new_verified(&program, run_cfg) {
            if vm.run().is_ok() {
                let cov = vm.coverage();
                map.observe(&sched::case_features(&program, vm.flat_program(), &cov));
            }
        }
    }
    map
}

/// The coverage-guided campaign: shard the case budget across the
/// worker pool, run the evolution loop per shard, merge shard corpora,
/// minimize, run the equal-budget random baseline, and finish with the
/// batch phase over every passing case.
fn run_guided(cfg: &CampaignConfig) -> CampaignSummary {
    let pool = if cfg.shards == 0 {
        WorkerPool::with_default_parallelism()
    } else {
        WorkerPool::new(cfg.shards)
    };
    let shards = pool.workers();
    let split = shard_split(cfg.cases, shards);
    let dedup: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));

    let started = std::time::Instant::now();
    let (tx, rx) = mpsc::channel::<ShardReport>();
    for (shard, &n_cases) in split.iter().enumerate() {
        let cfg = cfg.clone();
        let dedup = Arc::clone(&dedup);
        let tx = tx.clone();
        pool.submit(move || {
            let report = run_guided_shard(&cfg, shard, n_cases, &dedup);
            // The receiver only hangs up if a sibling shard panicked and
            // the campaign is already failing loudly.
            let _ = tx.send(report);
        });
    }
    drop(tx);
    let mut reports: Vec<ShardReport> = rx.iter().collect();
    assert_eq!(
        reports.len(),
        shards,
        "a guided shard panicked ({} jobs panicked in the pool)",
        pool.panicked_jobs()
    );
    reports.sort_by_key(|r| r.shard);
    let elapsed = started.elapsed();

    // Merge: counters add, corpora re-offer into one, the failure from
    // the lowest shard wins (deterministically), passing cases keep
    // shard-major order.
    let mut summary = CampaignSummary { guided: true, ..Default::default() };
    let mut corpus = Corpus::new();
    let mut seen = FeatureMap::new();
    let mut passing: Vec<PassingCase> = Vec::new();
    for r in reports {
        summary.cases += r.summary.cases;
        summary.total_base_steps += r.summary.total_base_steps;
        summary.total_insts += r.summary.total_insts;
        summary.narrowed += r.summary.narrowed;
        summary.specializations += r.summary.specializations;
        summary.sim_checks += r.summary.sim_checks;
        summary.fault_checks += r.summary.fault_checks;
        summary.mutants_tried += r.summary.mutants_tried;
        summary.mutants_kept += r.summary.mutants_kept;
        summary.discarded += r.summary.discarded;
        summary.dup_skipped += r.summary.dup_skipped;
        summary.execs += r.summary.execs;
        if summary.failure.is_none() {
            summary.failure = r.summary.failure;
        }
        corpus.absorb(r.corpus);
        seen.merge(&r.seen);
        passing.extend(r.passing);
    }
    summary.execs_per_sec = summary.execs as f64 / elapsed.as_secs_f64().max(1e-9);
    // Coverage counts come from the `seen` maps — everything the guided
    // loop executed — for a like-for-like comparison with the random
    // baseline below. The corpus map (admitted entries only) would
    // undercount what the loop actually explored.
    summary.blocks_covered = seen.blocks_covered() as u64;
    summary.edges_covered = seen.edges_covered() as u64;
    summary.corpus_size = corpus.entries().len() as u64;
    summary.corpus_minimized = corpus.minimized().len() as u64;

    // Equal-budget random baseline, sharded the same way.
    let (tx, rx) = mpsc::channel::<FeatureMap>();
    for (shard, &n_cases) in split.iter().enumerate() {
        let cfg = cfg.clone();
        let tx = tx.clone();
        pool.submit(move || {
            let _ = tx.send(random_baseline_shard(&cfg, shard, n_cases));
        });
    }
    drop(tx);
    let mut random_map = FeatureMap::new();
    for map in rx.iter() {
        random_map.merge(&map);
    }
    summary.blocks_covered_random = random_map.blocks_covered() as u64;
    summary.edges_covered_random = random_map.edges_covered() as u64;

    if summary.failure.is_none() {
        batch_phase(cfg, &passing, &mut summary);
    }
    summary
}

/// The minimized guided corpus of a campaign run, as ready-to-commit
/// corpus cases (used by the `corpus_tool evolve` subcommand to land
/// interesting finds in `crates/fuzz/corpus/`).
pub fn minimized_corpus_cases(cfg: &CampaignConfig) -> Vec<corpus::CorpusCase> {
    let pool = if cfg.shards == 0 {
        WorkerPool::with_default_parallelism()
    } else {
        WorkerPool::new(cfg.shards)
    };
    let shards = pool.workers();
    let split = shard_split(cfg.cases, shards);
    let dedup: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let (tx, rx) = mpsc::channel::<ShardReport>();
    for (shard, &n_cases) in split.iter().enumerate() {
        let cfg = cfg.clone();
        let dedup = Arc::clone(&dedup);
        let tx = tx.clone();
        pool.submit(move || {
            let _ = tx.send(run_guided_shard(&cfg, shard, n_cases, &dedup));
        });
    }
    drop(tx);
    let mut reports: Vec<ShardReport> = rx.iter().collect();
    reports.sort_by_key(|r| r.shard);
    let mut corpus_all = Corpus::new();
    for r in reports {
        corpus_all.absorb(r.corpus);
    }
    corpus_all
        .minimized()
        .into_iter()
        .map(|i| {
            let e = &corpus_all.entries()[i];
            corpus::CorpusCase {
                name: format!("guided-{:016x}", program_digest(&e.program)),
                seed: Some(e.seed),
                note: format!(
                    "guided campaign find (seed {:#x}): {} novel coverage features{}",
                    e.seed,
                    e.new_feats.len(),
                    if e.from_mutation { ", via mutation" } else { "" }
                ),
                max_steps: Some(e.max_steps),
                program: (*e.program).clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_layers_and_env_overrides_compose() {
        let c = Campaign::new(7).cases(123).coverage(true).shards(3).mutant_fuel(9).fail_dir("/x");
        assert_eq!(c.config().base_seed, 7);
        assert_eq!(c.config().cases, 123);
        assert!(c.config().coverage);
        assert_eq!(c.config().shards, 3);
        assert_eq!(c.config().mutant_fuel, 9);
        assert_eq!(c.config().fail_dir.as_deref(), Some(std::path::Path::new("/x")));
    }

    #[test]
    fn shard_split_conserves_cases_and_seeds_differ() {
        assert_eq!(shard_split(10, 3), vec![4, 3, 3]);
        assert_eq!(shard_split(2, 8).iter().sum::<u64>(), 2);
        assert_eq!(shard_seed(42, 0), 42, "shard 0 replays the base stream");
        let seeds: std::collections::HashSet<u64> = (0..16).map(|s| shard_seed(42, s)).collect();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn a_tiny_guided_campaign_is_green_and_evolves() {
        let summary = Campaign::new(0xBEEF).cases(48).coverage(true).shards(2).run();
        assert!(summary.failure.is_none(), "{:?}", summary.failure);
        assert!(summary.guided);
        assert_eq!(summary.cases, 48);
        assert!(summary.blocks_covered > 0);
        assert!(summary.corpus_size > 0);
        assert!(summary.corpus_minimized <= summary.corpus_size);
        assert!(summary.execs > 0);
        assert_eq!(
            summary.batch_checked as usize,
            48 - summary.discarded as usize - summary.dup_skipped as usize
        );
        let json = og_json::render(&summary.to_json()).unwrap();
        assert!(json.contains("\"blocks_covered_guided\""), "{json}");
        assert!(json.contains("\"blocks_covered_random\""), "{json}");
    }

    #[test]
    fn shrinking_preserves_the_original_failure_signature() {
        // Force a deterministic failure: an absurdly small fuel budget
        // makes the baseline run fail with `base-run`. Shrinking must
        // keep that signature — every kept edit still exhausts the fuel —
        // and be reproducible. The failure dir rides in through config,
        // not the process environment.
        let dir = std::env::temp_dir().join(format!("og-fuzz-sig-test-{}", std::process::id()));
        let gen_cfg = case_gen_config(3, 0);
        let (program, _) = generate_with_bound(&gen_cfg);
        let oracle_cfg = case_oracle_config(3);
        let error = match check_program(&program, &oracle_cfg) {
            Err(e) => CaseError::Oracle(e),
            Ok(_) => panic!("expected a base-run failure under 3 steps of fuel"),
        };
        assert_eq!(error.signature(), "oracle:base-run");
        let cfg = Campaign::new(3).shrink_budget(300).fail_dir(&dir).config().clone();
        let f = shrink_failure(&cfg, &oracle_cfg, 0, gen_cfg.seed, program.clone(), error);
        assert_eq!(
            candidate_signature(&f.reproducer, &oracle_cfg).as_deref(),
            Some("oracle:base-run"),
            "the reproducer must fail exactly like the original"
        );
        assert!(f.insts.1 <= f.insts.0);
        let saved = f.saved_to.expect("reproducer saved");
        assert!(saved.starts_with(&dir), "{saved:?} not under the configured fail dir");
        assert!(saved.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Parameter-sweep diagnostic, not a regression test: prints the
    /// guided-vs-random coverage balance across fresh/mutate ratios.
    /// `cargo test --release -p og-fuzz guided_vs_random_diag -- --ignored --nocapture`
    #[test]
    #[ignore]
    fn guided_vs_random_diag() {
        let cases = crate::env_u64("OG_FUZZ_CASES").unwrap_or(2000);
        let dedup = Mutex::new(HashSet::new());
        let base = CampaignConfig { base_seed: 0x06_F0_22, coverage: true, ..Default::default() };
        let random = random_baseline_shard(&base, 0, cases);
        for fresh_every in [2u64, 3, 4, 6] {
            let cfg = CampaignConfig { fresh_every, ..base.clone() };
            dedup.lock().unwrap().clear();
            let r = run_guided_shard(&cfg, 0, cases, &dedup);
            let mut only_guided = 0usize;
            let mut only_random = 0usize;
            for f in 0..sched::BLOCK_FEATURES {
                let g = r.seen.would_grow(&[f]);
                let rnd = random.would_grow(&[f]);
                // would_grow == "not yet set", so invert.
                match (!g, !rnd) {
                    (true, false) => only_guided += 1,
                    (false, true) => only_random += 1,
                    _ => {}
                }
            }
            println!(
                "fresh_every={fresh_every}: guided {}/{} blocks/edges vs random {}/{} \
                 (guided-only blocks {only_guided}, random-only {only_random}; \
                 {} mutants tried, {} kept, {} discarded)",
                r.seen.blocks_covered(),
                r.seen.edges_covered(),
                random.blocks_covered(),
                random.edges_covered(),
                r.summary.mutants_tried,
                r.summary.mutants_kept,
                r.summary.discarded,
            );
        }
    }

    #[test]
    fn guided_shards_are_deterministic() {
        let dedup_a = Mutex::new(HashSet::new());
        let dedup_b = Mutex::new(HashSet::new());
        let cfg = CampaignConfig { base_seed: 5, coverage: true, ..Default::default() };
        let a = run_guided_shard(&cfg, 1, 24, &dedup_a);
        let b = run_guided_shard(&cfg, 1, 24, &dedup_b);
        assert_eq!(a.summary.total_base_steps, b.summary.total_base_steps);
        assert_eq!(a.summary.mutants_tried, b.summary.mutants_tried);
        assert_eq!(a.corpus.entries().len(), b.corpus.entries().len());
        assert_eq!(a.corpus.map().blocks_covered(), b.corpus.map().blocks_covered());
    }
}
