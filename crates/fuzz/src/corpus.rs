//! The regression corpus: failing (since fixed) and otherwise interesting
//! programs, serialized as `*.og.json` files that a plain `cargo test`
//! replays forever.
//!
//! Committed cases live in `crates/fuzz/corpus/`. Fresh campaign failures
//! are written to `target/og-fuzz-failures/` (CI uploads that directory
//! as an artifact); reproduce locally with
//! `cargo run -p og-fuzz --example corpus_tool -- replay <file>`, and
//! once the underlying bug is fixed, move the file into the committed
//! corpus so the case is pinned.

use og_json::{Error, FromJson, Json, ToJson};
use og_program::Program;
use std::fs;
use std::path::{Path, PathBuf};

/// The corpus file format version this build reads and writes.
pub const FORMAT: u64 = 1;

/// One corpus case: a program plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusCase {
    /// Case name (the file stem by convention).
    pub name: String,
    /// Generator seed the case came from, if any.
    pub seed: Option<u64>,
    /// Human note: why this case exists / what it once broke.
    pub note: String,
    /// The step budget the case was checked under (the campaign's
    /// certificate-derived fuel). Bound-sensitive failures — fuel
    /// exhaustion, step-window violations — only reproduce under the
    /// *same* budget, so it travels with the case; absent means "use the
    /// oracle default".
    pub max_steps: Option<u64>,
    /// The program itself.
    pub program: Program,
}

impl CorpusCase {
    /// The oracle configuration this case must be replayed with: the
    /// recorded step budget when present, the default otherwise.
    pub fn oracle_config(&self) -> og_core::oracle::OracleConfig {
        let mut cfg = og_core::oracle::OracleConfig::default();
        if let Some(max_steps) = self.max_steps {
            cfg.max_steps = max_steps;
        }
        cfg
    }
}

impl ToJson for CorpusCase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), FORMAT.to_json()),
            ("name".into(), self.name.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("note".into(), self.note.to_json()),
            ("max_steps".into(), self.max_steps.to_json()),
            ("program".into(), self.program.to_json()),
        ])
    }
}

impl FromJson for CorpusCase {
    fn from_json(json: &Json) -> Result<CorpusCase, Error> {
        let format: u64 = json.field("format")?;
        if format != FORMAT {
            return Err(Error::new(format!("corpus format {format}, this build reads {FORMAT}")));
        }
        Ok(CorpusCase {
            name: json.field("name")?,
            seed: json.field("seed")?,
            note: json.field("note")?,
            // Optional for older files that predate the field.
            max_steps: match json.get("max_steps") {
                Some(v) => Option::<u64>::from_json(v).map_err(|e| e.in_field("max_steps"))?,
                None => None,
            },
            program: json.field("program")?,
        })
    }
}

/// The committed corpus directory of this crate.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Where fresh campaign failures are written: `$OG_FUZZ_FAIL_DIR` if set,
/// else `og-fuzz-failures/` under the bench/target directory.
pub fn failure_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("OG_FUZZ_FAIL_DIR") {
        return PathBuf::from(dir);
    }
    og_lab::report::bench_out_dir().join("og-fuzz-failures")
}

/// Load one case from an `*.og.json` file.
///
/// # Errors
///
/// Returns a message naming the file on unreadable, unparsable, or
/// structurally invalid content (decoding re-verifies the program).
pub fn load_case(path: &Path) -> Result<CorpusCase, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    og_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Load every `*.og.json` case in `dir`, sorted by file name so replay
/// order (and any first-failure report) is stable.
///
/// # Errors
///
/// Fails on the first unreadable or invalid file; an unreadable corpus
/// should fail the build, not silently shrink coverage.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusCase)>, String> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.file_name().is_some_and(|n| n.to_string_lossy().ends_with(".og.json")))
            .collect(),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let case = load_case(&path)?;
        out.push((path, case));
    }
    Ok(out)
}

/// Serialize `case` to `path` (creating parent directories).
///
/// # Errors
///
/// Reports I/O and rendering failures with the target path.
pub fn save_case(path: &Path, case: &CorpusCase) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    let text = og_json::render(&case.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
    fs::write(path, text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Save a campaign failure into [`failure_dir`] as `<name>.og.json`,
/// returning the path.
///
/// # Errors
///
/// See [`save_case`].
pub fn save_failure(case: &CorpusCase) -> Result<PathBuf, String> {
    save_failure_to(&failure_dir(), case)
}

/// Save a campaign failure into an explicit directory as
/// `<name>.og.json`, returning the path. This is what the campaign
/// engine calls with its configured
/// [`fail_dir`](crate::CampaignConfig::fail_dir), so tests can redirect
/// reproducers without mutating the process environment.
///
/// # Errors
///
/// See [`save_case`].
pub fn save_failure_to(dir: &Path, case: &CorpusCase) -> Result<PathBuf, String> {
    let path = dir.join(format!("{}.og.json", case.name));
    save_case(&path, case)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_program::generate::{generate_program, GenConfig};

    fn sample() -> CorpusCase {
        CorpusCase {
            name: "sample".into(),
            seed: Some(9),
            note: "round-trip test".into(),
            max_steps: Some(50_000),
            program: generate_program(&GenConfig { seed: 9, ..Default::default() }),
        }
    }

    #[test]
    fn cases_roundtrip_through_files() {
        let dir = std::env::temp_dir().join(format!("og-corpus-test-{}", std::process::id()));
        let path = dir.join("sample.og.json");
        let case = sample();
        save_case(&path, &case).unwrap();
        let back = load_case(&path).unwrap();
        assert_eq!(back, case);
        let listed = load_dir(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].1, case);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_version_is_enforced() {
        let mut json = sample().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::Num(99.0);
        }
        let err = CorpusCase::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("format 99"), "{err}");
    }

    #[test]
    fn the_committed_corpus_directory_exists() {
        assert!(corpus_dir().is_dir(), "{:?} missing", corpus_dir());
    }
}
