//! # og-fuzz: differential fuzzing of the operand-gating passes
//!
//! The hand-written kernels exercise a sliver of the program space VRP
//! and VRS must be sound over. This crate closes the gap with seeded,
//! deterministic random campaigns:
//!
//! 1. **generate** — [`og_program::generate`] builds a random but
//!    provably terminating program (counted loops, fuel-bounded
//!    non-affine loops, mixed-width arithmetic, bounded memory, calls)
//!    together with a step bound;
//! 2. **check** — [`og_core::oracle::check_program`] first demands the
//!    program pass the collect-all verifier (a generated program that
//!    fails to verify is itself a bug — signature `base-verify`), then
//!    runs it untransformed (fused *and* materialized VM paths — which
//!    since the pre-decoded engine landed also means the **flat** and
//!    **reference graph-walking** engines, cross-checked on every case —
//!    plus trace-chain invariants) and after every transform in the battery
//!    (VRP across useful policies × ISA extensions, VRS with synthetic
//!    self-profiles), demanding byte-identical output streams and sane
//!    step counts. The fused baseline takes the **trusted fast path**
//!    (`Vm::new_verified`), so every case also fuzzes the verifier's
//!    invariant in both directions: generated programs must verify
//!    clean, and verified programs must never report a structural
//!    `VmError::Malformed` — or blow a static call-depth certificate —
//!    in either engine (signature `invariant`). Periodically the
//!    committed-path trace also drives the
//!    cycle simulator both fused (flat engine) and materialized
//!    (reference engine), and the two [`SimResult`]s must match
//!    bit-for-bit;
//! 3. **batch** — at the end of a green campaign every passing case is
//!    re-executed through the fused+batched no-stats engine
//!    ([`og_lab::run_batch`] sharding [`og_vm::BatchRunner`] lanes
//!    across a worker pool) and must reproduce the oracle's step count
//!    and output digest (signature `batch`) — the campaign-wide
//!    differential for the og-serve fast path;
//! 4. **shrink** — on failure, [`shrink::shrink`] greedily minimizes the
//!    program against the same oracle;
//! 5. **persist** — the shrunk reproducer is written to
//!    `target/og-fuzz-failures/` as an `*.og.json` corpus case (CI
//!    uploads it as an artifact), ready to be replayed locally and, once
//!    fixed, committed to `crates/fuzz/corpus/` where the replay test
//!    guards it forever.
//!
//! Campaigns are configured by [`CampaignConfig`]; the standing test
//! honours `OG_FUZZ_CASES` and `OG_FUZZ_SEED`. Every case is fully
//! determined by `(base_seed, index)`, so any CI failure reproduces
//! locally from the numbers in its report alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod shrink;

use og_core::oracle::{check_program, OracleConfig, OracleOutcome};
use og_json::{Json, ToJson};
use og_lab::{run_batch, BatchJob, WorkerPool};
use og_program::generate::{generate_with_bound, GenConfig};
use og_program::rng::SplitMix64;
use og_program::Program;
use og_sim::{MachineConfig, SimResult, Simulator};
use og_vm::{BatchRunner, FlatProgram, RunConfig, VecSink, Vm};
use std::sync::Arc;

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed of the first case; case `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Run the fused-vs-materialized simulator cross-check on every Nth
    /// case (0 disables it).
    pub sim_check_every: u64,
    /// Shrink-step budget (oracle invocations) when a case fails.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { base_seed: 0x06_F0_22, cases: 500, sim_check_every: 8, shrink_budget: 800 }
    }
}

impl CampaignConfig {
    /// Read `OG_FUZZ_CASES` / `OG_FUZZ_SEED` over the defaults.
    pub fn from_env() -> CampaignConfig {
        let mut cfg = CampaignConfig::default();
        if let Some(cases) = env_u64("OG_FUZZ_CASES") {
            cfg.cases = cases;
        }
        if let Some(seed) = env_u64("OG_FUZZ_SEED") {
            cfg.base_seed = seed;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => panic!("{name} must be an unsigned integer, got `{v}`"),
    }
}

/// The generator configuration of case `(base_seed, index)`. Shape knobs
/// are derived from the seed so a campaign sweeps small/large, loopy/flat,
/// call-free/call-heavy programs — deterministically.
pub fn case_gen_config(base_seed: u64, index: u64) -> GenConfig {
    let seed = base_seed.wrapping_add(index);
    // Shape knobs come from the seed's first SplitMix64 output (the
    // generator draws from its own fresh stream; sharing the first word
    // with it is harmless for diversity).
    let z = SplitMix64::new(seed).next_u64();
    GenConfig {
        seed,
        regions: 3 + (z & 7) as usize,             // 3..=10
        max_straight: 4 + ((z >> 3) & 7) as usize, // 4..=11
        memory: (z >> 6) & 7 != 0,                 // on 7/8 of cases
        calls: (z >> 9) & 7 != 0,
        max_loop_depth: 1 + ((z >> 12) & 1) as usize + ((z >> 13) & 1) as usize, // 1..=3
        non_affine: (z >> 14) & 3 != 0,                                          // on 3/4 of cases
        fuel: 8 + ((z >> 16) & 31),                                              // 8..=39
    }
}

/// The oracle configuration used for a generated case: fuel derived from
/// the generator's step bound (so the campaign continuously validates the
/// termination certificate), default transform battery.
pub fn case_oracle_config(step_bound: u64) -> OracleConfig {
    OracleConfig { max_steps: step_bound, ..Default::default() }
}

/// Run the committed-path trace through the cycle simulator twice — fused
/// (the flat engine streams into the simulator) and materialized (the
/// **reference** graph-walking engine captures into a `VecSink`, then
/// replays) — and compare results bit-for-bit. Because the two runs sit
/// on different execution engines, any divergence in the trace streams
/// the engines produce (pc chaining, operand significances, memory
/// addresses) surfaces here as a `SimResult` mismatch.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn sim_cross_check(p: &Program, max_steps: u64) -> Result<(), String> {
    let cfg = RunConfig { max_steps, ..Default::default() };
    let mut vm = Vm::new(p, cfg.clone());
    let mut sim = Simulator::new(MachineConfig::default());
    vm.run_streamed(&mut sim).map_err(|e| format!("fused run failed: {e}"))?;
    let fused: SimResult = sim.finish();

    let mut vm = Vm::new(p, cfg);
    let mut sink = VecSink::new();
    vm.run_reference_streamed(&mut sink).map_err(|e| format!("capture run failed: {e}"))?;
    let materialized = Simulator::new(MachineConfig::default()).run(&sink.into_records());

    if fused != materialized {
        return Err(format!(
            "fused and materialized SimResults diverge: fused {} cycles, materialized {} cycles",
            fused.stats.cycles, materialized.stats.cycles
        ));
    }
    Ok(())
}

/// Run `p` as a single lane of a quantum-stepped [`BatchRunner`] (the
/// fused, trusted, no-stats engine og-serve's batch path uses) and
/// compare the architectural result — steps, output bytes, digest —
/// against the reference graph-walking engine.
///
/// A deliberately small quantum forces many pause/resume boundaries, so
/// the check exercises mid-run suspension (including between the
/// constituents of fused superinstructions), not just the happy path.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn batch_cross_check(p: &Program, max_steps: u64) -> Result<(), String> {
    let cfg = RunConfig { max_steps, ..Default::default() };
    let mut vm = Vm::new(p, cfg.clone());
    let reference = vm.run_reference().map_err(|e| format!("reference run failed: {e}"))?;
    let ref_out = vm.output().to_vec();

    let flat = FlatProgram::lower_verified(p, &p.layout())
        .map_err(|e| format!("trusted lowering failed: {e}"))?;
    let mut runner = BatchRunner::with_quantum(7);
    runner.push(Vm::with_lowered(p, cfg, flat));
    runner.run();
    let (batch_vm, result) = runner.into_lanes().pop().expect("one lane");
    let outcome = result.map_err(|e| format!("batched run failed: {e}"))?;
    if outcome.steps != reference.steps {
        return Err(format!("batched steps {} != reference {}", outcome.steps, reference.steps));
    }
    if outcome.output_digest != reference.output_digest {
        return Err(format!(
            "batched digest {:#x} != reference {:#x}",
            outcome.output_digest, reference.output_digest
        ));
    }
    if batch_vm.output() != ref_out {
        return Err("batched output bytes != reference output bytes".to_string());
    }
    Ok(())
}

/// One failing case, after shrinking.
#[derive(Debug)]
pub struct CaseFailure {
    /// The case's generator seed (`base_seed + index`).
    pub seed: u64,
    /// Index within the campaign.
    pub index: u64,
    /// The oracle's verdict on the *original* program.
    pub error: String,
    /// The shrunk reproducer.
    pub reproducer: Program,
    /// Static instructions before and after shrinking.
    pub insts: (usize, usize),
    /// Where the reproducer was saved (when saving succeeded).
    pub saved_to: Option<std::path::PathBuf>,
}

/// Aggregate results of a campaign.
#[derive(Debug, Default)]
pub struct CampaignSummary {
    /// Cases run.
    pub cases: u64,
    /// Committed instructions across all baseline runs.
    pub total_base_steps: u64,
    /// Static instructions across all generated programs.
    pub total_insts: u64,
    /// Instructions narrowed across all VRP transform runs.
    pub narrowed: u64,
    /// Specializations applied across all VRS transform runs.
    pub specializations: u64,
    /// Simulator cross-checks performed.
    pub sim_checks: u64,
    /// Passing cases re-executed through the batched engine at the end
    /// of the campaign (0 when the campaign failed before that phase).
    pub batch_checked: u64,
    /// The failure, if the campaign found one (it stops at the first).
    pub failure: Option<CaseFailure>,
}

impl CampaignSummary {
    /// The campaign summary as JSON (the `BENCH_fuzz` report CI collects).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cases".to_string(), self.cases.to_json()),
            ("total_base_steps".to_string(), self.total_base_steps.to_json()),
            ("total_static_insts".to_string(), self.total_insts.to_json()),
            ("vrp_narrowed".to_string(), self.narrowed.to_json()),
            ("vrs_specializations".to_string(), self.specializations.to_json()),
            ("sim_cross_checks".to_string(), self.sim_checks.to_json()),
            ("batch_cross_checked".to_string(), self.batch_checked.to_json()),
            ("failed".to_string(), Json::Bool(self.failure.is_some())),
        ];
        if let Some(f) = &self.failure {
            fields.push(("failure_seed".into(), f.seed.to_json()));
            fields.push(("failure_error".into(), f.error.to_json()));
        }
        Json::Obj(fields)
    }
}

/// Run a campaign. Deterministic: identical configs produce identical
/// summaries (including any failure and its shrunk reproducer).
///
/// The campaign stops at the first failing case, shrinks it against the
/// same oracle, and saves the reproducer via
/// [`corpus::save_failure`] so CI can upload it.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    let mut passing: Vec<PassingCase> = Vec::new();
    for index in 0..cfg.cases {
        let gen_cfg = case_gen_config(cfg.base_seed, index);
        let (program, bound) = generate_with_bound(&gen_cfg);
        let oracle_cfg = case_oracle_config(bound);
        summary.cases += 1;
        summary.total_insts += program.inst_count() as u64;

        let sim_checked = cfg.sim_check_every != 0 && index % cfg.sim_check_every == 0;
        let verdict: Result<OracleOutcome, CaseError> =
            check_program(&program, &oracle_cfg).map_err(CaseError::Oracle).and_then(|outcome| {
                if sim_checked {
                    summary.sim_checks += 1;
                    sim_cross_check(&program, bound).map_err(CaseError::Sim)?;
                }
                Ok(outcome)
            });

        match verdict {
            Ok(outcome) => {
                summary.total_base_steps += outcome.base_steps;
                summary.narrowed += outcome.narrowed as u64;
                summary.specializations += outcome.specializations as u64;
                passing.push(PassingCase {
                    index,
                    seed: gen_cfg.seed,
                    program: Arc::new(program),
                    max_steps: oracle_cfg.max_steps,
                    base_steps: outcome.base_steps,
                    base_digest: outcome.base_digest,
                });
            }
            Err(error) => {
                summary.failure =
                    Some(shrink_failure(cfg, &oracle_cfg, index, gen_cfg.seed, program, error));
                break;
            }
        }
    }

    // End-of-campaign batch phase: every passing case re-executes through
    // the fused+batched no-stats engine, sharded across a worker pool,
    // and must land on the oracle's step count and output digest. This
    // is the campaign-wide differential for the og-serve fast path.
    if summary.failure.is_none() && !passing.is_empty() {
        let pool = WorkerPool::with_default_parallelism();
        let jobs: Vec<BatchJob> = passing
            .iter()
            .map(|c| {
                let config = RunConfig { max_steps: c.max_steps, ..Default::default() };
                BatchJob::verified(Arc::clone(&c.program), config)
                    .expect("oracle-passing cases verify")
            })
            .collect();
        let results = run_batch(&pool, jobs);
        summary.batch_checked = passing.len() as u64;
        for (case, slot) in passing.iter().zip(results) {
            let mismatch = match slot {
                None => Some("batch shard lost to a worker panic".to_string()),
                Some(Err(e)) => Some(format!("batched run failed: {e}")),
                Some(Ok(outcome)) => {
                    if outcome.steps != case.base_steps {
                        Some(format!(
                            "batched steps {} != oracle baseline {}",
                            outcome.steps, case.base_steps
                        ))
                    } else if outcome.output_digest != case.base_digest {
                        Some(format!(
                            "batched digest {:#x} != oracle baseline {:#x}",
                            outcome.output_digest, case.base_digest
                        ))
                    } else {
                        None
                    }
                }
            };
            if let Some(what) = mismatch {
                let oracle_cfg = case_oracle_config(case.max_steps);
                summary.failure = Some(shrink_failure(
                    cfg,
                    &oracle_cfg,
                    case.index,
                    case.seed,
                    (*case.program).clone(),
                    CaseError::Batch(what),
                ));
                break;
            }
        }
    }
    summary
}

/// A case the oracle passed, retained for the end-of-campaign batch
/// phase: what the batched engine must reproduce.
struct PassingCase {
    index: u64,
    seed: u64,
    program: Arc<Program>,
    max_steps: u64,
    base_steps: u64,
    base_digest: u64,
}

/// How a case failed: the differential oracle, or the simulator
/// fused-vs-materialized cross-check.
enum CaseError {
    Oracle(og_core::oracle::OracleError),
    Sim(String),
    Batch(String),
}

impl CaseError {
    /// A stable signature of the failure mode (variant + transform, no
    /// volatile detail). Shrinking only keeps edits under which the
    /// candidate still fails with this exact signature, so a reproducer
    /// for a VRP miscompile cannot drift into, say, an unrelated
    /// fuel-exhaustion failure.
    fn signature(&self) -> String {
        match self {
            CaseError::Oracle(e) => format!("oracle:{}", e.signature()),
            CaseError::Sim(_) => "sim".to_string(),
            CaseError::Batch(_) => "batch".to_string(),
        }
    }

    fn message(&self) -> String {
        match self {
            CaseError::Oracle(e) => e.to_string(),
            CaseError::Sim(m) | CaseError::Batch(m) => m.clone(),
        }
    }
}

/// The failure signature a candidate program exhibits, if any. The
/// simulator cross-check only runs when the oracle passes — mirroring
/// the campaign's own order, so original and candidate signatures are
/// comparable.
fn candidate_signature(p: &Program, oracle_cfg: &OracleConfig) -> Option<String> {
    match check_program(p, oracle_cfg) {
        Err(e) => Some(CaseError::Oracle(e).signature()),
        Ok(_) => sim_cross_check(p, oracle_cfg.max_steps)
            .err()
            .map(|m| CaseError::Sim(m).signature())
            .or_else(|| {
                batch_cross_check(p, oracle_cfg.max_steps)
                    .err()
                    .map(|m| CaseError::Batch(m).signature())
            }),
    }
}

/// Shrink a failing case and persist the reproducer.
fn shrink_failure(
    cfg: &CampaignConfig,
    oracle_cfg: &OracleConfig,
    index: u64,
    seed: u64,
    program: Program,
    error: CaseError,
) -> CaseFailure {
    let before = program.inst_count();
    let signature = error.signature();
    let error = error.message();
    // An edit survives only if the candidate still fails in the same way
    // as the original: failing *differently* (e.g. an introduced infinite
    // loop hitting the fuel bound) would shrink toward the wrong bug.
    let mut still_fails = |candidate: &Program| -> bool {
        candidate_signature(candidate, oracle_cfg).as_deref() == Some(signature.as_str())
    };
    let reproducer = shrink::shrink(&program, &mut still_fails, cfg.shrink_budget);
    let after = reproducer.inst_count();
    let case = corpus::CorpusCase {
        name: format!("shrunk-seed-{seed}"),
        seed: Some(seed),
        note: format!("campaign failure at index {index}: {error}"),
        // Bound-sensitive failures only reproduce under the same fuel.
        max_steps: Some(oracle_cfg.max_steps),
        program: reproducer.clone(),
    };
    let saved_to = match corpus::save_failure(&case) {
        Ok(path) => Some(path),
        Err(e) => {
            eprintln!("could not save reproducer: {e}");
            None
        }
    };
    CaseFailure { seed, index, error, reproducer, insts: (before, after), saved_to }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_configs_are_deterministic_and_diverse() {
        let a = case_gen_config(1, 5);
        let b = case_gen_config(1, 5);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.regions, b.regions);
        // Diversity: across 64 indices the shape knobs must not be const.
        let mut regions = std::collections::HashSet::new();
        let mut depths = std::collections::HashSet::new();
        let mut mem = std::collections::HashSet::new();
        for i in 0..64 {
            let c = case_gen_config(1, i);
            regions.insert(c.regions);
            depths.insert(c.max_loop_depth);
            mem.insert(c.memory);
        }
        assert!(regions.len() > 3, "{regions:?}");
        assert_eq!(depths.len(), 3, "{depths:?}");
        assert_eq!(mem.len(), 2);
    }

    #[test]
    fn a_tiny_campaign_is_green_and_counts_work() {
        let summary =
            run_campaign(&CampaignConfig { cases: 8, sim_check_every: 4, ..Default::default() });
        assert!(summary.failure.is_none(), "{:?}", summary.failure);
        assert_eq!(summary.cases, 8);
        assert_eq!(summary.sim_checks, 2);
        assert_eq!(summary.batch_checked, 8, "every passing case re-runs batched");
        assert!(summary.total_base_steps > 0);
        assert!(summary.narrowed > 0, "VRP narrowed nothing across 8 programs?");
        let json = og_json::render(&summary.to_json()).unwrap();
        assert!(json.contains("\"failed\":false"), "{json}");
        assert!(json.contains("\"batch_cross_checked\":8"), "{json}");
    }

    #[test]
    fn sim_cross_check_passes_on_a_generated_program() {
        let (p, bound) = generate_with_bound(&case_gen_config(42, 0));
        sim_cross_check(&p, bound).unwrap();
    }

    #[test]
    fn batch_cross_check_passes_on_generated_programs() {
        for index in 0..4 {
            let (p, bound) = generate_with_bound(&case_gen_config(42, index));
            batch_cross_check(&p, bound).unwrap_or_else(|e| panic!("case {index}: {e}"));
        }
    }

    #[test]
    fn generated_programs_verify_clean_with_call_depth_certificates() {
        // One half of the invariant the campaign fuzzes: everything the
        // generator emits must pass the collect-all verifier, and since
        // the generator never emits recursion, every program must carry a
        // static call-depth certificate within the VM's default budget.
        let budget = RunConfig::default().max_call_depth;
        for index in 0..32 {
            let (p, _) = generate_with_bound(&case_gen_config(0xCE27, index));
            let ctx = p.verify_all().unwrap_or_else(|errors| {
                panic!("generated case {index} fails to verify: {errors:?}")
            });
            let depth = ctx
                .static_call_depth
                .unwrap_or_else(|| panic!("generated case {index} has no depth certificate"));
            assert!(depth <= budget, "case {index}: depth {depth} exceeds budget {budget}");
            assert!(ctx.recursion_free, "case {index}: generator emitted recursion");
        }
    }

    #[test]
    fn shrinking_preserves_the_original_failure_signature() {
        // Force a deterministic failure: an absurdly small fuel budget
        // makes the baseline run fail with `base-run`. Shrinking must
        // keep that signature — every kept edit still exhausts the fuel —
        // and be reproducible.
        let dir = std::env::temp_dir().join(format!("og-fuzz-sig-test-{}", std::process::id()));
        std::env::set_var("OG_FUZZ_FAIL_DIR", &dir);
        let gen_cfg = case_gen_config(3, 0);
        let (program, _) = generate_with_bound(&gen_cfg);
        let oracle_cfg = case_oracle_config(3);
        let error = match check_program(&program, &oracle_cfg) {
            Err(e) => CaseError::Oracle(e),
            Ok(_) => panic!("expected a base-run failure under 3 steps of fuel"),
        };
        assert_eq!(error.signature(), "oracle:base-run");
        let cfg = CampaignConfig { shrink_budget: 300, ..Default::default() };
        let f = shrink_failure(&cfg, &oracle_cfg, 0, gen_cfg.seed, program.clone(), error);
        assert_eq!(
            candidate_signature(&f.reproducer, &oracle_cfg).as_deref(),
            Some("oracle:base-run"),
            "the reproducer must fail exactly like the original"
        );
        assert!(f.insts.1 <= f.insts.0);
        assert!(f.saved_to.as_deref().is_some_and(|p| p.exists()));
        std::env::remove_var("OG_FUZZ_FAIL_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }
}
