//! # og-fuzz: differential fuzzing of the operand-gating passes
//!
//! The hand-written kernels exercise a sliver of the program space VRP
//! and VRS must be sound over. This crate closes the gap with seeded,
//! deterministic campaigns, driven through one entry point — the
//! [`Campaign`] builder:
//!
//! ```no_run
//! use og_fuzz::Campaign;
//! let summary = Campaign::new(0x06_F0_22).cases(500).run();
//! assert!(summary.failure.is_none());
//! ```
//!
//! Every campaign follows the same spine:
//!
//! 1. **generate** — [`og_program::generate`] builds a random but
//!    provably terminating program (counted loops, fuel-bounded
//!    non-affine loops, mixed-width arithmetic, bounded memory, calls)
//!    together with a step bound;
//! 2. **check** — [`og_core::oracle::check_program`] first demands the
//!    program pass the collect-all verifier (a generated program that
//!    fails to verify is itself a bug — signature `base-verify`), then
//!    runs it untransformed (fused *and* materialized VM paths — which
//!    since the pre-decoded engine landed also means the **flat** and
//!    **reference graph-walking** engines, cross-checked on every case —
//!    plus trace-chain invariants) and after every transform in the battery
//!    (VRP across useful policies × ISA extensions, VRS with synthetic
//!    self-profiles), demanding byte-identical output streams and sane
//!    step counts. The fused baseline takes the **trusted fast path**
//!    (`Vm::new_verified`), so every case also fuzzes the verifier's
//!    invariant in both directions: generated programs must verify
//!    clean, and verified programs must never report a structural
//!    `VmError::Malformed` — or blow a static call-depth certificate —
//!    in either engine (signature `invariant`). Periodically the
//!    committed-path trace also drives the
//!    cycle simulator both fused (flat engine) and materialized
//!    (reference engine), and the two [`SimResult`]s must match
//!    bit-for-bit; periodically a passing case is also replayed under
//!    one seeded soft error ([`fault_cross_check`]) and the fault
//!    classifier must be sound both ways — never `Masked` with a
//!    changed output digest, never `Sdc` with an unchanged one
//!    (signature `fault`);
//! 3. **batch** — at the end of a green campaign every passing case is
//!    re-executed through the fused+batched no-stats engine
//!    ([`og_lab::run_batch`] sharding [`og_vm::BatchRunner`] lanes
//!    across a worker pool) and must reproduce the oracle's step count
//!    and output digest (signature `batch`) — the campaign-wide
//!    differential for the og-serve fast path;
//! 4. **shrink** — on failure, [`shrink::shrink`] greedily minimizes the
//!    program against the same oracle;
//! 5. **persist** — the shrunk reproducer is written to the campaign's
//!    failure directory ([`CampaignConfig::fail_dir`], default
//!    `target/og-fuzz-failures/`; CI uploads it as an artifact) as an
//!    `*.og.json` corpus case, ready to be replayed locally and, once
//!    fixed, committed to `crates/fuzz/corpus/` where the replay test
//!    guards it forever.
//!
//! ## Coverage-guided mode
//!
//! `Campaign::new(seed).coverage(true)` swaps the fixed random budget
//! for a **corpus-evolving loop** sharded across an
//! [`og_lab::WorkerPool`] (module [`campaign`] documents the mechanics):
//! each run's per-block coverage ([`og_vm::Coverage`], read straight
//! from the flat engine's dense block counters) is projected into a
//! global feature space ([`sched`]) of instruction shapes — including
//! the operand-significance class of every immediate, the quantity the
//! paper's gating decisions turn on — and covered-block adjacencies;
//! inputs that light new features are kept as mutation bases for the
//! structural mutators in [`mutate`] (immediate perturbation at
//! significance boundaries, branch retargeting/flipping through the
//! verifier gate, block splicing, width jitter). The oracle stays the
//! judge: only oracle-green inputs enter the corpus, every find shrinks
//! the same way, and the guided run reports a random baseline at equal
//! budget so `BENCH_fuzz.json` always carries the
//! `blocks_covered_guided` vs `blocks_covered_random` comparison CI
//! gates on. The kept corpus is set-cover minimized at end of run;
//! [`minimized_corpus_cases`] turns one into ready-to-commit
//! `*.og.json` cases.
//!
//! Campaigns are configured by [`CampaignConfig`]; environment
//! overrides (`OG_FUZZ_CASES`, `OG_FUZZ_SEED`, `OG_FUZZ_COVERAGE`,
//! `OG_FUZZ_SHARDS`, `OG_FUZZ_FAULT_EVERY`, `OG_FUZZ_FAIL_DIR`) are one
//! explicit builder layer
//! ([`Campaign::overrides_from_env`]) — nothing else in the crate reads
//! the process environment. Every random-mode case is fully determined
//! by `(base_seed, index)`, and every guided shard by
//! `(base_seed, shard)`, so any CI failure reproduces locally from the
//! numbers in its report alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod mutate;
pub mod sched;
pub mod shrink;

pub use campaign::{
    minimized_corpus_cases, Campaign, CampaignConfig, CampaignSummary, CaseFailure,
};

use og_core::oracle::OracleConfig;
use og_program::generate::GenConfig;
use og_program::rng::SplitMix64;
use og_program::Program;
use og_sim::{MachineConfig, SimResult, Simulator};
use og_vm::{BatchRunner, FlatProgram, RunConfig, VecSink, Vm};

/// Run a campaign with the given config.
#[deprecated(note = "use the Campaign builder: `Campaign::from_config(cfg).run()`")]
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignSummary {
    Campaign::from_config(cfg.clone()).run()
}

pub(crate) fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    match v.parse() {
        Ok(n) => Some(n),
        Err(_) => panic!("{name} must be an unsigned integer, got `{v}`"),
    }
}

/// The generator configuration of case `(base_seed, index)`. Shape knobs
/// are derived from the seed so a campaign sweeps small/large, loopy/flat,
/// call-free/call-heavy programs — deterministically.
pub fn case_gen_config(base_seed: u64, index: u64) -> GenConfig {
    let seed = base_seed.wrapping_add(index);
    // Shape knobs come from the seed's first SplitMix64 output (the
    // generator draws from its own fresh stream; sharing the first word
    // with it is harmless for diversity).
    let z = SplitMix64::new(seed).next_u64();
    GenConfig {
        seed,
        regions: 3 + (z & 7) as usize,             // 3..=10
        max_straight: 4 + ((z >> 3) & 7) as usize, // 4..=11
        memory: (z >> 6) & 7 != 0,                 // on 7/8 of cases
        calls: (z >> 9) & 7 != 0,
        max_loop_depth: 1 + ((z >> 12) & 1) as usize + ((z >> 13) & 1) as usize, // 1..=3
        non_affine: (z >> 14) & 3 != 0,                                          // on 3/4 of cases
        fuel: 8 + ((z >> 16) & 31),                                              // 8..=39
    }
}

/// The oracle configuration used for a generated case: fuel derived from
/// the generator's step bound (so the campaign continuously validates the
/// termination certificate), default transform battery.
pub fn case_oracle_config(step_bound: u64) -> OracleConfig {
    OracleConfig { max_steps: step_bound, ..Default::default() }
}

/// Run the committed-path trace through the cycle simulator twice — fused
/// (the flat engine streams into the simulator) and materialized (the
/// **reference** graph-walking engine captures into a `VecSink`, then
/// replays) — and compare results bit-for-bit. Because the two runs sit
/// on different execution engines, any divergence in the trace streams
/// the engines produce (pc chaining, operand significances, memory
/// addresses) surfaces here as a `SimResult` mismatch.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn sim_cross_check(p: &Program, max_steps: u64) -> Result<(), String> {
    let cfg = RunConfig { max_steps, ..Default::default() };
    let mut vm = Vm::new(p, cfg.clone());
    let mut sim = Simulator::new(MachineConfig::default());
    vm.run_streamed(&mut sim).map_err(|e| format!("fused run failed: {e}"))?;
    let fused: SimResult = sim.finish();

    let mut vm = Vm::new(p, cfg);
    let mut sink = VecSink::new();
    vm.run_reference_streamed(&mut sink).map_err(|e| format!("capture run failed: {e}"))?;
    let materialized = Simulator::new(MachineConfig::default()).run(&sink.into_records());

    if fused != materialized {
        return Err(format!(
            "fused and materialized SimResults diverge: fused {} cycles, materialized {} cycles",
            fused.stats.cycles, materialized.stats.cycles
        ));
    }
    Ok(())
}

/// Replay `p` under one seeded soft error ([`og_vm::fault`]) and check
/// the fault classifier's soundness **both ways** against the golden
/// run: a finished faulted run is `Masked` if and only if its output
/// digest equals the golden digest, a run that did not finish is never
/// `Masked` or `Sdc`, and — when the strike happened to land past the
/// end of the run and never fired — the quantum-sliced driver must be
/// architecturally invisible (same steps, same digest as the golden
/// run).
///
/// # Errors
///
/// Returns a description of the first soundness violation.
pub fn fault_cross_check(p: &Program, max_steps: u64, seed: u64) -> Result<(), String> {
    use og_vm::fault::{classify, hang_budget, run_with_plan, FaultOutcome, FaultPlan, FaultedEnd};
    let golden = Vm::new(p, RunConfig { max_steps, ..Default::default() })
        .run()
        .map_err(|e| format!("golden run failed: {e}"))?;
    let plan = FaultPlan::seeded(seed, golden.steps.max(1), 1);
    let budget = RunConfig { max_steps: hang_budget(golden.steps), ..Default::default() };
    let run = run_with_plan(&mut Vm::new(p, budget), &plan);
    let outcome = classify(&golden, &run.end);
    match &run.end {
        FaultedEnd::Finished(o) => {
            let same_digest = o.output_digest == golden.output_digest;
            if (outcome == FaultOutcome::Masked) != same_digest {
                return Err(format!(
                    "classifier says {} but faulted digest {:#x} vs golden {:#x}",
                    outcome.name(),
                    o.output_digest,
                    golden.output_digest
                ));
            }
            if run.injected.is_empty() && (o.steps != golden.steps || !same_digest) {
                return Err(format!(
                    "no strike fired yet the sliced run diverged: {} steps / digest {:#x} \
                     vs golden {} / {:#x}",
                    o.steps, o.output_digest, golden.steps, golden.output_digest
                ));
            }
        }
        FaultedEnd::Faulted(_) | FaultedEnd::WildJump { .. } => {
            if matches!(outcome, FaultOutcome::Masked | FaultOutcome::Sdc) {
                return Err(format!("run did not finish but was classified {}", outcome.name()));
            }
        }
    }
    Ok(())
}

/// Run `p` as a single lane of a quantum-stepped [`BatchRunner`] (the
/// fused, trusted, no-stats engine og-serve's batch path uses) and
/// compare the architectural result — steps, output bytes, digest —
/// against the reference graph-walking engine.
///
/// A deliberately small quantum forces many pause/resume boundaries, so
/// the check exercises mid-run suspension (including between the
/// constituents of fused superinstructions), not just the happy path.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn batch_cross_check(p: &Program, max_steps: u64) -> Result<(), String> {
    let cfg = RunConfig { max_steps, ..Default::default() };
    let mut vm = Vm::new(p, cfg.clone());
    let reference = vm.run_reference().map_err(|e| format!("reference run failed: {e}"))?;
    let ref_out = vm.output().to_vec();

    let flat = FlatProgram::lower_verified(p, &p.layout())
        .map_err(|e| format!("trusted lowering failed: {e}"))?;
    let mut runner = BatchRunner::with_quantum(7);
    runner.push(Vm::with_lowered(p, cfg, flat));
    runner.run();
    let (batch_vm, result) = runner.into_lanes().pop().expect("one lane");
    let outcome = result.map_err(|e| format!("batched run failed: {e}"))?;
    if outcome.steps != reference.steps {
        return Err(format!("batched steps {} != reference {}", outcome.steps, reference.steps));
    }
    if outcome.output_digest != reference.output_digest {
        return Err(format!(
            "batched digest {:#x} != reference {:#x}",
            outcome.output_digest, reference.output_digest
        ));
    }
    if batch_vm.output() != ref_out {
        return Err("batched output bytes != reference output bytes".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_program::generate::generate_with_bound;

    #[test]
    fn case_configs_are_deterministic_and_diverse() {
        let a = case_gen_config(1, 5);
        let b = case_gen_config(1, 5);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.regions, b.regions);
        // Diversity: across 64 indices the shape knobs must not be const.
        let mut regions = std::collections::HashSet::new();
        let mut depths = std::collections::HashSet::new();
        let mut mem = std::collections::HashSet::new();
        for i in 0..64 {
            let c = case_gen_config(1, i);
            regions.insert(c.regions);
            depths.insert(c.max_loop_depth);
            mem.insert(c.memory);
        }
        assert!(regions.len() > 3, "{regions:?}");
        assert_eq!(depths.len(), 3, "{depths:?}");
        assert_eq!(mem.len(), 2);
    }

    #[test]
    fn a_tiny_campaign_is_green_and_counts_work() {
        let summary = Campaign::new(0x06_F0_22).cases(8).sim_check_every(4).run();
        assert!(summary.failure.is_none(), "{:?}", summary.failure);
        assert_eq!(summary.cases, 8);
        assert_eq!(summary.sim_checks, 2);
        assert_eq!(summary.batch_checked, 8, "every passing case re-runs batched");
        assert!(summary.total_base_steps > 0);
        assert!(summary.narrowed > 0, "VRP narrowed nothing across 8 programs?");
        let json = og_json::render(&summary.to_json()).unwrap();
        assert!(json.contains("\"failed\":false"), "{json}");
        assert!(json.contains("\"batch_cross_checked\":8"), "{json}");
    }

    #[test]
    fn the_deprecated_free_function_still_runs() {
        // The one-PR compatibility shim: same behaviour as the builder.
        #[allow(deprecated)]
        let summary = run_campaign(&CampaignConfig { cases: 2, ..Default::default() });
        assert!(summary.failure.is_none());
        assert_eq!(summary.cases, 2);
    }

    #[test]
    fn sim_cross_check_passes_on_a_generated_program() {
        let (p, bound) = generate_with_bound(&case_gen_config(42, 0));
        sim_cross_check(&p, bound).unwrap();
    }

    #[test]
    fn batch_cross_check_passes_on_generated_programs() {
        for index in 0..4 {
            let (p, bound) = generate_with_bound(&case_gen_config(42, index));
            batch_cross_check(&p, bound).unwrap_or_else(|e| panic!("case {index}: {e}"));
        }
    }

    #[test]
    fn generated_programs_verify_clean_with_call_depth_certificates() {
        // One half of the invariant the campaign fuzzes: everything the
        // generator emits must pass the collect-all verifier, and since
        // the generator never emits recursion, every program must carry a
        // static call-depth certificate within the VM's default budget.
        let budget = RunConfig::default().max_call_depth;
        for index in 0..32 {
            let (p, _) = generate_with_bound(&case_gen_config(0xCE27, index));
            let ctx = p.verify_all().unwrap_or_else(|errors| {
                panic!("generated case {index} fails to verify: {errors:?}")
            });
            let depth = ctx
                .static_call_depth
                .unwrap_or_else(|| panic!("generated case {index} has no depth certificate"));
            assert!(depth <= budget, "case {index}: depth {depth} exceeds budget {budget}");
            assert!(ctx.recursion_free, "case {index}: generator emitted recursion");
        }
    }
}
