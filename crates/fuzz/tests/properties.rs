//! Generator and shrinker properties the campaign's soundness rests on:
//!
//! * same seed ⇒ byte-identical program (and identical step bound);
//! * every generated program halts within its own step bound — the
//!   termination certificate is checked with *exactly* that budget, no
//!   slack, across a spread of shapes;
//! * shrinking is deterministic and respects its budget;
//! * shrinking a failing case never grows it and the reproducer fails
//!   in the *same oracle class* as the original — a shrink that drifts
//!   into a different failure mode would pin the wrong bug.

use og_fuzz::{case_gen_config, shrink};
use og_program::generate::{generate_program, generate_with_bound, GenConfig};
use og_vm::{HaltReason, RunConfig, Vm};

#[test]
fn same_seed_same_program_and_bound() {
    for index in 0..40 {
        let cfg = case_gen_config(7, index);
        let (a, bound_a) = generate_with_bound(&cfg);
        let (b, bound_b) = generate_with_bound(&cfg);
        assert_eq!(a, b, "index {index}");
        assert_eq!(bound_a, bound_b, "index {index}");
        assert_eq!(a, generate_program(&cfg), "index {index}");
    }
}

#[test]
fn every_generated_program_halts_within_its_step_bound() {
    for index in 0..300u64 {
        let cfg = case_gen_config(0xF00D, index);
        let (p, bound) = generate_with_bound(&cfg);
        let mut vm = Vm::new(&p, RunConfig { max_steps: bound, ..Default::default() });
        let outcome = vm.run().unwrap_or_else(|e| panic!("seed {}: {e} (bound {bound})", cfg.seed));
        assert_eq!(outcome.reason, HaltReason::Halt, "seed {}", cfg.seed);
        assert!(outcome.steps <= bound);
        assert!(!vm.output().is_empty(), "seed {}: no observable output", cfg.seed);
    }
}

#[test]
fn extreme_configs_terminate_too() {
    // Deep nesting, long fuel, no memory/calls, single region — corners
    // the sweep in `case_gen_config` reaches rarely.
    let corners = [
        GenConfig { seed: 1, regions: 12, max_loop_depth: 3, fuel: 64, ..Default::default() },
        GenConfig { seed: 2, regions: 1, max_straight: 1, ..Default::default() },
        GenConfig { seed: 3, memory: false, calls: false, non_affine: false, ..Default::default() },
        GenConfig { seed: 4, fuel: 1, non_affine: true, ..Default::default() },
    ];
    for cfg in corners {
        let (p, bound) = generate_with_bound(&cfg);
        let mut vm = Vm::new(&p, RunConfig { max_steps: bound, ..Default::default() });
        vm.run().unwrap_or_else(|e| panic!("seed {}: {e} (bound {bound})", cfg.seed));
    }
}

#[test]
fn shrinking_keeps_the_oracle_class_and_never_grows() {
    use og_core::oracle::{check_program, OracleConfig};
    // Starve the oracle of fuel so every case fails deterministically in
    // the `base-run` class; shrink against "still fails with exactly the
    // original signature" — the same predicate the campaign uses.
    let oracle_cfg = OracleConfig { max_steps: 3, ..Default::default() };
    let mut shrunk_any = false;
    for index in [0u64, 4, 11, 23] {
        let cfg = case_gen_config(0x5_11_12, index);
        let p = generate_program(&cfg);
        let original = match check_program(&p, &oracle_cfg) {
            Err(e) => e.signature(),
            Ok(_) => panic!("seed {}: expected failure under 3 steps of fuel", cfg.seed),
        };
        let same_class = |c: &og_program::Program| -> bool {
            matches!(check_program(c, &oracle_cfg), Err(e) if e.signature() == original)
        };
        let a = shrink::shrink_with(&p, same_class, 400);
        let b = shrink::shrink_with(&p, same_class, 400);
        assert_eq!(a, b, "seed {}: shrink must be deterministic", cfg.seed);
        assert!(a.inst_count() <= p.inst_count(), "seed {}: shrink grew the case", cfg.seed);
        assert!(a.verify().is_ok(), "seed {}: reproducer must stay well-formed", cfg.seed);
        let shrunk_sig = match check_program(&a, &oracle_cfg) {
            Err(e) => e.signature(),
            Ok(_) => panic!("seed {}: reproducer no longer fails", cfg.seed),
        };
        assert_eq!(shrunk_sig, original, "seed {}: oracle class drifted", cfg.seed);
        shrunk_any |= a.inst_count() < p.inst_count();
    }
    assert!(shrunk_any, "shrinking never removed a single instruction across all seeds");
}

#[test]
fn shrinker_is_deterministic_on_a_semantic_predicate() {
    // Shrink against "the program writes at least 4 output bytes" — a
    // predicate that, unlike instruction-presence, depends on execution.
    let writes_output = |p: &og_program::Program| -> bool {
        let mut vm = Vm::new(p, RunConfig { max_steps: 1_000_000, ..Default::default() });
        vm.run().map(|_| vm.output().len() >= 4).unwrap_or(false)
    };
    for index in [0u64, 9, 17] {
        let cfg = case_gen_config(0xCAFE, index);
        let p = generate_program(&cfg);
        if !writes_output(&p) {
            continue;
        }
        let a = shrink::shrink_with(&p, writes_output, 600);
        let b = shrink::shrink_with(&p, writes_output, 600);
        assert_eq!(a, b, "seed {}: shrink must be deterministic", cfg.seed);
        assert!(writes_output(&a));
        assert!(a.inst_count() <= p.inst_count());
        assert!(a.verify().is_ok());
    }
}
