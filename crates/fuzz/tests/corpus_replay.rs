//! Corpus replay: every committed `crates/fuzz/corpus/*.og.json` case
//! must round-trip through the serializer and pass the full differential
//! oracle, forever. A case that once exposed a bug stays pinned here
//! after the fix; a case that stops parsing or verifying fails loudly.

use og_core::oracle::check_program;
use og_fuzz::corpus::{corpus_dir, load_dir, CorpusCase};
use og_fuzz::sim_cross_check;
use og_json::{FromJson, ToJson};

#[test]
fn corpus_is_nonempty_and_loads() {
    let cases = load_dir(&corpus_dir()).unwrap_or_else(|e| panic!("corpus unreadable: {e}"));
    assert!(
        cases.len() >= 3,
        "committed corpus shrank to {} cases — it only ever grows",
        cases.len()
    );
    for (path, case) in &cases {
        assert_eq!(
            path.file_name().unwrap().to_string_lossy(),
            format!("{}.og.json", case.name),
            "corpus file name and case name must agree"
        );
        assert!(!case.note.is_empty(), "{}: every case documents why it exists", case.name);
    }
}

#[test]
fn corpus_cases_roundtrip_through_json() {
    for (path, case) in load_dir(&corpus_dir()).unwrap() {
        let rendered = og_json::render(&case.to_json()).unwrap();
        let back = CorpusCase::from_json(&og_json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, case, "{}: serialize→parse is not the identity", path.display());
    }
}

#[test]
fn every_corpus_case_passes_the_differential_oracle() {
    for (path, case) in load_dir(&corpus_dir()).unwrap() {
        // Replay under the case's recorded step budget (the campaign's
        // certificate-derived fuel), so bound-sensitive regressions
        // cannot hide behind the roomier default.
        let cfg = case.oracle_config();
        check_program(&case.program, &cfg).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        sim_cross_check(&case.program, cfg.max_steps)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}
