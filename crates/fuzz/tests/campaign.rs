//! The standing differential campaign: ≥500 seeded random programs, each
//! checked untransformed (fused vs materialized VM paths, trace-chain
//! invariants) and across the VRP/VRS transform battery, with periodic
//! fused-vs-materialized simulator cross-checks.
//!
//! Knobs (one explicit env layer over the [`Campaign`] builder):
//! `OG_FUZZ_CASES` (default 500), `OG_FUZZ_SEED`, `OG_FUZZ_COVERAGE=1`
//! to run the coverage-guided corpus-evolving loop (CI's `fuzz-coverage`
//! job sets it with `OG_FUZZ_CASES=2000`), `OG_FUZZ_SHARDS`, and
//! `OG_FUZZ_FAIL_DIR`. A failure shrinks to a minimal reproducer, is
//! saved under the failure dir (CI uploads it), and the panic message
//! carries everything needed to replay locally.
//!
//! In guided mode the summary carries the equal-budget random-vs-guided
//! coverage comparison, and at a ≥2000-case budget the guided loop must
//! cover **strictly more** distinct block features than pure random
//! generation — the coverage gate CI enforces.

use og_fuzz::Campaign;

#[test]
fn seeded_differential_campaign_is_green() {
    let summary = Campaign::new(0x06_F0_22).overrides_from_env().run();

    // The campaign summary rides the same BENCH_* report channel CI
    // already collects, so the per-PR fuzz footprint is tracked. A
    // missing report is loud but not fatal — the campaign verdict is.
    let report = match og_lab::report::write_bench_report("fuzz", &summary.to_json()) {
        Ok(path) => path.display().to_string(),
        Err(e) => {
            eprintln!("{e}");
            "<not written>".to_string()
        }
    };
    if summary.guided {
        println!(
            "og-fuzz guided campaign: {} cases, {} blocks covered (random baseline {}), \
             {} edges (random {}), corpus {} (minimized {}), {} mutants kept of {} tried, \
             {} discarded, {} dups, {:.0} execs/s (report: {report})",
            summary.cases,
            summary.blocks_covered,
            summary.blocks_covered_random,
            summary.edges_covered,
            summary.edges_covered_random,
            summary.corpus_size,
            summary.corpus_minimized,
            summary.mutants_kept,
            summary.mutants_tried,
            summary.discarded,
            summary.dup_skipped,
            summary.execs_per_sec,
        );
    } else {
        println!(
            "og-fuzz campaign: {} cases, {} baseline steps, {} narrowed, {} specializations, \
             {} sim cross-checks (report: {report})",
            summary.cases,
            summary.total_base_steps,
            summary.narrowed,
            summary.specializations,
            summary.sim_checks,
        );
    }

    if let Some(f) = &summary.failure {
        panic!(
            "differential failure at case {} (seed {}): {}\n\
             reproducer: {} insts (shrunk from {}), saved to {}\n\
             replay: cargo run -p og-fuzz --example corpus_tool -- replay <file>\n\
             regenerate: OG_FUZZ_SEED={} OG_FUZZ_CASES=1 cargo test -p og-fuzz campaign",
            f.index,
            f.seed,
            f.error,
            f.insts.1,
            f.insts.0,
            f.saved_to.as_deref().map(|p| p.display().to_string()).unwrap_or_default(),
            f.seed,
        );
    }

    // Meaningfulness guards: a campaign that stops exercising the passes
    // (nothing narrowed, nothing specialized, no work run) is a bug in
    // the generator or the oracle wiring, not a success.
    assert!(summary.cases >= 1);
    assert!(summary.total_base_steps > summary.cases * 10, "programs are degenerate");
    assert!(summary.narrowed > 0, "VRP narrowed nothing across the whole campaign");
    if summary.cases >= 100 && !summary.guided {
        assert!(
            summary.specializations > 0,
            "VRS specialized nothing across {} cases",
            summary.cases
        );
    }

    if summary.guided {
        // The corpus must have evolved, not just collected generator
        // output: mutation happened, dedup pruned, minimization held.
        assert!(summary.blocks_covered > 0, "guided campaign covered nothing");
        assert!(summary.corpus_size > 0, "guided campaign kept no corpus");
        assert!(summary.corpus_minimized <= summary.corpus_size);
        assert!(summary.mutants_tried > 0, "the guided loop never mutated");
        // The CI coverage gate: at an equal ≥2000-case budget the guided
        // loop must beat pure random generation on distinct block
        // features covered. (Below that budget the corpus is still
        // warming up, so only the non-strict direction is meaningful.)
        if summary.cases >= 2000 {
            assert!(
                summary.blocks_covered > summary.blocks_covered_random,
                "guided coverage ({}) must strictly beat random ({}) at {} cases",
                summary.blocks_covered,
                summary.blocks_covered_random,
                summary.cases
            );
        }
    }
}

/// A small always-on guided run: the evolution loop must be green and
/// report the comparison fields regardless of environment knobs.
#[test]
fn a_small_guided_campaign_is_green() {
    let summary = Campaign::new(0xC0DA).cases(64).coverage(true).run();
    assert!(summary.failure.is_none(), "{:?}", summary.failure);
    assert!(summary.guided);
    assert!(summary.blocks_covered > 0);
    let json = og_json::render(&summary.to_json()).unwrap();
    assert!(json.contains("\"blocks_covered_guided\""), "{json}");
    assert!(json.contains("\"blocks_covered_random\""), "{json}");
}
