//! The standing differential campaign: ≥500 seeded random programs, each
//! checked untransformed (fused vs materialized VM paths, trace-chain
//! invariants) and across the VRP/VRS transform battery, with periodic
//! fused-vs-materialized simulator cross-checks.
//!
//! Knobs: `OG_FUZZ_CASES` (default 500) and `OG_FUZZ_SEED`. A failure
//! shrinks to a minimal reproducer, is saved under
//! `target/og-fuzz-failures/` (CI uploads it), and the panic message
//! carries everything needed to replay locally.

use og_fuzz::{run_campaign, CampaignConfig};

#[test]
fn seeded_differential_campaign_is_green() {
    let cfg = CampaignConfig::from_env();
    let summary = run_campaign(&cfg);

    // The campaign summary rides the same BENCH_* report channel CI
    // already collects, so the per-PR fuzz footprint is tracked. A
    // missing report is loud but not fatal — the campaign verdict is.
    let report = match og_lab::report::write_bench_report("fuzz", &summary.to_json()) {
        Ok(path) => path.display().to_string(),
        Err(e) => {
            eprintln!("{e}");
            "<not written>".to_string()
        }
    };
    println!(
        "og-fuzz campaign: {} cases, {} baseline steps, {} narrowed, {} specializations, \
         {} sim cross-checks (report: {report})",
        summary.cases,
        summary.total_base_steps,
        summary.narrowed,
        summary.specializations,
        summary.sim_checks,
    );

    if let Some(f) = &summary.failure {
        panic!(
            "differential failure at case {} (seed {}): {}\n\
             reproducer: {} insts (shrunk from {}), saved to {}\n\
             replay: cargo run -p og-fuzz --example corpus_tool -- replay <file>\n\
             regenerate: OG_FUZZ_SEED={} OG_FUZZ_CASES=1 cargo test -p og-fuzz campaign",
            f.index,
            f.seed,
            f.error,
            f.insts.1,
            f.insts.0,
            f.saved_to.as_deref().map(|p| p.display().to_string()).unwrap_or_default(),
            f.seed,
        );
    }

    // Meaningfulness guards: a campaign that stops exercising the passes
    // (nothing narrowed, nothing specialized, no work run) is a bug in
    // the generator or the oracle wiring, not a success.
    assert!(summary.cases >= 1);
    assert!(summary.total_base_steps > summary.cases * 20, "programs are degenerate");
    assert!(summary.narrowed > 0, "VRP narrowed nothing across the whole campaign");
    if summary.cases >= 100 {
        assert!(
            summary.specializations > 0,
            "VRS specialized nothing across {} cases",
            summary.cases
        );
    }
}
