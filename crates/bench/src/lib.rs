//! # og-bench
//!
//! This crate only exists to host the benchmark harnesses in `benches/`:
//! one target per table and figure of the paper's evaluation (each prints
//! the corresponding rows/series — see DESIGN.md's experiment index) plus
//! Criterion micro-benchmarks of the tooling itself.
//!
//! Run everything with `cargo bench -p og-bench`, or a single artifact
//! with e.g. `cargo bench -p og-bench --bench fig8_energy_savings`.

#![forbid(unsafe_code)]
