//! Perf regression gate: compare a fresh `BENCH_vm.json` against the
//! committed baseline snapshot.
//!
//! ```text
//! OG_BENCH_SMOKE=1 cargo bench -p og-bench --bench micro_throughput
//! cargo run --release -p og-bench --example bench_gate
//! ```
//!
//! The committed baseline lives at `bench/baseline/BENCH_vm.json` (the
//! CI box's smoke-mode numbers). Every single-stream engine series —
//! `flat`, `trusted`, and the fused no-stats headline `fused` — must
//! stay within 20% of its baseline steps/sec; a larger drop exits
//! nonzero. The fused and batch series are printed either way so the
//! superinstruction and aggregate numbers are visible in the CI log.
//!
//! Arguments (both optional, in order): baseline path, fresh path.
//! Defaults: the committed snapshot, and `BENCH_vm.json` in the bench
//! output directory (`OG_BENCH_OUT` or `target/`).

use og_json::Json;
use std::path::{Path, PathBuf};

/// The single-stream series the gate protects, as `(key, label)`.
const GATED: [(&str, &str); 3] = [
    ("flat_steps_per_sec", "flat"),
    ("trusted_steps_per_sec", "trusted"),
    ("fused_steps_per_sec", "fused (nostats)"),
];

/// Largest tolerated drop relative to baseline: fresh ≥ 0.8 × baseline.
const MAX_REGRESSION: f64 = 0.20;

fn load(path: &Path) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    og_json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn num(report: &Json, key: &str, path: &Path) -> f64 {
    report.field::<f64>(key).unwrap_or_else(|e| panic!("{}: missing `{key}`: {e}", path.display()))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().map(PathBuf::from).unwrap_or_else(|| {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../bench/baseline/BENCH_vm.json"))
    });
    let fresh_path = args
        .next()
        .map(PathBuf::from)
        .unwrap_or_else(|| og_lab::report::bench_out_dir().join("BENCH_vm.json"));
    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);

    println!("bench_gate: baseline {}", baseline_path.display());
    println!("bench_gate: fresh    {}", fresh_path.display());

    let mut failures = Vec::new();
    for (key, label) in GATED {
        let base = num(&baseline, key, &baseline_path);
        let now = num(&fresh, key, &fresh_path);
        let ratio = now / base;
        println!(
            "bench_gate: {label:<16} {now:>14.0} steps/s  (baseline {base:>14.0}, x{ratio:.3})"
        );
        if ratio < 1.0 - MAX_REGRESSION {
            failures.push(format!(
                "{label}: {now:.0} steps/s is {:.1}% below baseline {base:.0}",
                100.0 * (1.0 - ratio)
            ));
        }
    }

    // The superinstruction and aggregate headlines, for the CI log.
    let fused = num(&fresh, "fused_steps_per_sec", &fresh_path);
    let batch = num(&fresh, "batch_steps_per_sec", &fresh_path);
    let lanes = num(&fresh, "batch_lanes", &fresh_path);
    let cores = num(&fresh, "cores", &fresh_path);
    let fusion = num(&fresh, "fusion_speedup", &fresh_path);
    println!(
        "bench_gate: fused single-stream {:.1}M steps/s (fusion A/B x{fusion:.2}), \
         batch aggregate {:.1}M steps/s ({lanes:.0} lanes on {cores:.0} core(s))",
        fused / 1e6,
        batch / 1e6,
    );

    if failures.is_empty() {
        println!("bench_gate: all single-stream series within {:.0}%", 100.0 * MAX_REGRESSION);
    } else {
        for f in &failures {
            eprintln!("bench_gate: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
