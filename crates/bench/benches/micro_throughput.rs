//! Criterion micro-benchmarks: analysis and simulation throughput.
//!
//! These measure the *tooling* (how fast VRP analyzes, the emulator
//! executes and the timing model simulates), complementing the figure
//! benches that measure the *reproduced system*. The headline series is
//! the **fused vs materialized** pipeline comparison: one streamed
//! emulate+simulate pass (`Vm::run_streamed` into the `Simulator` sink,
//! O(1) trace memory) against capture-then-replay through a `VecSink`
//! (O(steps) memory).
//!
//! The second headline series is the **engine** comparison: the
//! pre-decoded flat engine (the default behind `Vm::run*`) against the
//! reference graph-walking interpreter (`Vm::run_reference*`), in
//! committed steps per second — plus the **trusted** variant
//! (`Vm::new_verified`), which verifies up front and drops the per-step
//! defensive check, reported as a delta over the plain flat engine.
//!
//! On top of those sit the superinstruction series: a **fusion A/B**
//! (default fused lowering vs `lower_unfused`), the **fused no-stats**
//! single-stream headline (`Vm::new_verified` + `run_nostats` — every
//! non-architectural check and all bookkeeping compiled out), and the
//! **batch** aggregate (many trusted VMs round-robin stepped per core
//! via `og_lab::run_batch`).
//!
//! Run with `cargo bench -p og-bench --bench micro_throughput`.
//!
//! With `OG_BENCH_SMOKE=1` the Criterion groups are skipped and only the
//! quick headline measurements run; either way the comparisons are
//! written as machine-readable JSON to `BENCH_throughput.json`,
//! `BENCH_vm.json` and `BENCH_fusion.json` (the fusion-opportunity
//! profile over the workload suite + committed fuzz corpus) in the
//! target directory (override with `OG_BENCH_OUT`) so CI can track the
//! perf trajectory, with `bench_gate` failing any >20% single-stream
//! regression against the committed `bench/baseline/BENCH_vm.json`.

use criterion::{criterion_group, Criterion, Throughput};
use og_core::{VrpConfig, VrpPass};
use og_json::{Json, ToJson};
use og_sim::{MachineConfig, SimResult, Simulator};
use og_vm::{RunConfig, VecSink, Vm};
use og_workloads::{compress, m88ksim, InputSet};
use std::time::{Duration, Instant};

fn bench_vrp(c: &mut Criterion) {
    let program = m88ksim(InputSet::Train).program;
    let insts = program.inst_count() as u64;
    let mut g = c.benchmark_group("vrp");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("analyze_m88ksim", |b| {
        b.iter(|| {
            let mut p = program.clone();
            VrpPass::new(VrpConfig::default()).run(&mut p)
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("emulate_compress", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, RunConfig::default());
            vm.run().expect("runs")
        })
    });
    g.bench_function("emulate_compress_reference", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, RunConfig::default());
            vm.run_reference().expect("runs")
        })
    });
    g.bench_function("emulate_compress_trusted", |b| {
        b.iter(|| {
            let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
            vm.run().expect("runs")
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let mut sink = VecSink::new();
    vm.run_streamed(&mut sink).expect("runs");
    let trace = sink.into_records();
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("timing_compress", |b| {
        let sim = Simulator::new(MachineConfig::default());
        b.iter(|| sim.run(&trace))
    });
    g.finish();
}

fn run_fused(program: &og_program::Program) -> SimResult {
    let mut vm = Vm::new(program, RunConfig::default());
    let mut sim = Simulator::new(MachineConfig::default());
    vm.run_streamed(&mut sim).expect("runs");
    sim.finish()
}

fn run_materialized(program: &og_program::Program) -> SimResult {
    let mut vm = Vm::new(program, RunConfig::default());
    let mut sink = VecSink::new();
    vm.run_streamed(&mut sink).expect("runs");
    Simulator::new(MachineConfig::default()).run(&sink.into_records())
}

fn bench_pipeline(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("fused_compress", |b| b.iter(|| run_fused(&program)));
    g.bench_function("materialized_compress", |b| b.iter(|| run_materialized(&program)));
    g.finish();
}

/// Median wall-clock of `samples` runs of `f` (one untimed warm-up).
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    f();
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

/// Measure fused vs materialized records/sec and write the JSON report.
fn throughput_report(smoke: bool) {
    let (input, samples) = if smoke { (InputSet::Train, 3) } else { (InputSet::Ref, 10) };
    let program = compress(input).program;
    let records = {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run().expect("runs").steps
    };

    // The two paths must agree bit-for-bit before their speeds mean
    // anything.
    assert_eq!(run_fused(&program), run_materialized(&program), "fused != materialized");

    let fused = median_secs(samples, || run_fused(&program));
    let materialized = median_secs(samples, || run_materialized(&program));
    let fused_rps = records as f64 / fused;
    let materialized_rps = records as f64 / materialized;
    println!(
        "pipeline/fused_vs_materialized   {:>12.0} rec/s fused, {:>12.0} rec/s materialized \
         (x{:.2}, {records} records, {} input)",
        fused_rps,
        materialized_rps,
        fused_rps / materialized_rps,
        if smoke { "train" } else { "ref" },
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("compress".into())),
        ("input".into(), Json::Str(if smoke { "train" } else { "ref" }.into())),
        ("mode".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("records".into(), records.to_json()),
        ("samples".into(), (samples as u64).to_json()),
        ("fused_records_per_sec".into(), fused_rps.to_json()),
        ("materialized_records_per_sec".into(), materialized_rps.to_json()),
    ]);
    match og_lab::report::write_bench_report("throughput", &report) {
        Ok(path) => println!("throughput report written to {}", path.display()),
        Err(e) => eprintln!("{e}"),
    }
}

/// Measure flat-engine vs reference-engine committed-steps/sec and write
/// the `BENCH_vm.json` report. The flat engine's pre-decoded hot loop is
/// the PR 5 tentpole; this is the number its ≥2× acceptance criterion is
/// judged on.
fn vm_report(smoke: bool) {
    // Always the Ref input: the engine comparison measures the hot loop,
    // and the Train run is short enough (~15k steps against a program of
    // comparable static size) that per-`Vm::new` setup — layout,
    // lowering, data-segment load — would dominate what is being
    // measured. A Ref run is ~5 ms, affordable even in smoke mode.
    let samples = if smoke { 3 } else { 10 };
    let program = compress(InputSet::Ref).program;

    // The engines must agree bit-for-bit before their speeds mean
    // anything (outcome incl. digest, and full dynamic statistics).
    let (flat_outcome, flat_stats) = {
        let mut vm = Vm::new(&program, RunConfig::default());
        let o = vm.run().expect("runs");
        (o, vm.stats().clone())
    };
    let (ref_outcome, ref_stats) = {
        let mut vm = Vm::new(&program, RunConfig::default());
        let o = vm.run_reference().expect("runs");
        (o, vm.stats().clone())
    };
    assert_eq!(flat_outcome, ref_outcome, "flat != reference outcome");
    assert_eq!(flat_stats, ref_stats, "flat != reference stats");
    let (trusted_outcome, trusted_stats) = {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        let o = vm.run().expect("runs");
        (o, vm.stats().clone())
    };
    assert_eq!(trusted_outcome, flat_outcome, "trusted != flat outcome");
    assert_eq!(trusted_stats, flat_stats, "trusted != flat stats");
    // Fusion A/B: the default lowering fuses superinstructions; the
    // unfused lowering must still agree bit-for-bit.
    let layout = program.layout();
    let (unfused_outcome, unfused_stats) = {
        let lowered = og_vm::FlatProgram::lower_unfused(&program, &layout);
        let mut vm = Vm::with_lowered(&program, RunConfig::default(), lowered);
        let o = vm.run().expect("runs");
        (o, vm.stats().clone())
    };
    assert_eq!(unfused_outcome, flat_outcome, "unfused != fused outcome");
    assert_eq!(unfused_stats, flat_stats, "unfused != fused stats");
    // No-stats mode keeps the architectural outcome identical.
    let nostats_outcome = {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        vm.run_nostats().expect("runs")
    };
    assert_eq!(nostats_outcome, flat_outcome, "nostats != flat outcome");
    let steps = flat_outcome.steps;
    let fused_count = og_vm::FlatProgram::lower(&program, &layout).fused_count();

    // Plain emulation (no sink): the golden-digest / oracle path.
    let flat = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run().expect("runs")
    });
    let reference = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run_reference().expect("runs")
    });
    // Streamed emulation: the fused pipeline path, with a sink that
    // forces every record to be produced but does no downstream work.
    let flat_streamed = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run_streamed(&mut og_vm::NullSink).expect("runs")
    });
    let reference_streamed = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run_reference_streamed(&mut og_vm::NullSink).expect("runs")
    });
    // Trusted lowering: the verifier runs once up front (inside
    // `new_verified`, so its cost is charged to this series) and the hot
    // loop drops the per-step malformed-slot check.
    let trusted = median_secs(samples, || {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        vm.run().expect("runs")
    });
    let trusted_streamed = median_secs(samples, || {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        vm.run_streamed(&mut og_vm::NullSink).expect("runs")
    });
    // The fusion A/B partner: same untrusted stats engine, fusion off.
    let unfused = median_secs(samples, || {
        let lowered = og_vm::FlatProgram::lower_unfused(&program, &layout);
        let mut vm = Vm::with_lowered(&program, RunConfig::default(), lowered);
        vm.run().expect("runs")
    });
    // The single-stream headline: trusted + fused + no-stats — every
    // check and every piece of bookkeeping that is not the architectural
    // outcome compiled out (verify and lowering charged to the series).
    let fused_nostats = median_secs(samples, || {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        vm.run_nostats().expect("runs")
    });
    // The aggregate headline: many independent trusted VMs round-robin
    // stepped by one BatchRunner per core, sharded across the worker
    // pool by `og_lab::run_batch`.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let batch_lanes = (2 * cores).max(8);
    let batch_program = std::sync::Arc::new(program.clone());
    let pool = og_lab::WorkerPool::with_default_parallelism();
    {
        // Batched execution must agree with solo before its speed counts.
        let jobs: Vec<og_lab::BatchJob> = (0..batch_lanes)
            .map(|_| {
                og_lab::BatchJob::verified(
                    std::sync::Arc::clone(&batch_program),
                    RunConfig::default(),
                )
                .expect("verifies")
            })
            .collect();
        for slot in og_lab::run_batch(&pool, jobs) {
            let outcome = slot.expect("no shard lost").expect("runs");
            assert_eq!(outcome, flat_outcome, "batched != solo outcome");
        }
    }
    let batch = median_secs(samples, || {
        let jobs: Vec<og_lab::BatchJob> = (0..batch_lanes)
            .map(|_| {
                og_lab::BatchJob::verified(
                    std::sync::Arc::clone(&batch_program),
                    RunConfig::default(),
                )
                .expect("verifies")
            })
            .collect();
        og_lab::run_batch(&pool, jobs)
    });

    let flat_sps = steps as f64 / flat;
    let reference_sps = steps as f64 / reference;
    let flat_streamed_sps = steps as f64 / flat_streamed;
    let reference_streamed_sps = steps as f64 / reference_streamed;
    let trusted_sps = steps as f64 / trusted;
    let trusted_streamed_sps = steps as f64 / trusted_streamed;
    let unfused_sps = steps as f64 / unfused;
    let fused_sps = steps as f64 / fused_nostats;
    let batch_sps = (steps * batch_lanes as u64) as f64 / batch;
    println!(
        "vm/flat_vs_reference             {:>12.0} steps/s flat, {:>12.0} steps/s reference \
         (x{:.2}, plain)",
        flat_sps,
        reference_sps,
        flat_sps / reference_sps,
    );
    println!(
        "vm/flat_vs_reference_streamed    {:>12.0} steps/s flat, {:>12.0} steps/s reference \
         (x{:.2}, NullSink, {steps} steps, ref input)",
        flat_streamed_sps,
        reference_streamed_sps,
        flat_streamed_sps / reference_streamed_sps,
    );
    println!(
        "vm/trusted_vs_flat               {:>12.0} steps/s trusted, {:>12.0} steps/s flat \
         (x{:.2} plain, x{:.2} streamed; verify charged to trusted)",
        trusted_sps,
        flat_sps,
        trusted_sps / flat_sps,
        trusted_streamed_sps / flat_streamed_sps,
    );
    println!(
        "vm/fusion_ab                     {:>12.0} steps/s fused, {:>12.0} steps/s unfused \
         (x{:.2}, {fused_count} superinstructions in compress)",
        flat_sps,
        unfused_sps,
        flat_sps / unfused_sps,
    );
    println!(
        "vm/fused_nostats                 {:>12.0} steps/s single-stream (trusted+fused+nostats, \
         x{:.2} over trusted)",
        fused_sps,
        fused_sps / trusted_sps,
    );
    println!(
        "vm/batch                         {:>12.0} steps/s aggregate ({batch_lanes} lanes, \
         {cores} core(s), x{:.2} over fused single-stream)",
        batch_sps,
        batch_sps / fused_sps,
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("compress".into())),
        ("input".into(), Json::Str("ref".into())),
        ("mode".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("steps".into(), steps.to_json()),
        ("samples".into(), (samples as u64).to_json()),
        ("flat_steps_per_sec".into(), flat_sps.to_json()),
        ("reference_steps_per_sec".into(), reference_sps.to_json()),
        ("speedup".into(), (flat_sps / reference_sps).to_json()),
        ("flat_streamed_steps_per_sec".into(), flat_streamed_sps.to_json()),
        ("reference_streamed_steps_per_sec".into(), reference_streamed_sps.to_json()),
        ("streamed_speedup".into(), (flat_streamed_sps / reference_streamed_sps).to_json()),
        ("trusted_steps_per_sec".into(), trusted_sps.to_json()),
        ("trusted_streamed_steps_per_sec".into(), trusted_streamed_sps.to_json()),
        ("trusted_over_flat".into(), (trusted_sps / flat_sps).to_json()),
        ("trusted_streamed_over_flat".into(), (trusted_streamed_sps / flat_streamed_sps).to_json()),
        ("unfused_steps_per_sec".into(), unfused_sps.to_json()),
        ("fusion_speedup".into(), (flat_sps / unfused_sps).to_json()),
        ("fused_count".into(), (fused_count as u64).to_json()),
        ("fused_steps_per_sec".into(), fused_sps.to_json()),
        ("fused_over_trusted".into(), (fused_sps / trusted_sps).to_json()),
        ("batch_lanes".into(), (batch_lanes as u64).to_json()),
        ("batch_steps_per_sec".into(), batch_sps.to_json()),
        ("cores".into(), (cores as u64).to_json()),
    ]);
    match og_lab::report::write_bench_report("vm", &report) {
        Ok(path) => println!("vm engine report written to {}", path.display()),
        Err(e) => eprintln!("{e}"),
    }
}

/// Profile fusion opportunities over the whole workload suite plus the
/// committed fuzz corpus and write `BENCH_fusion.json` — the data the
/// lowering's fused-op set is chosen from (and re-validated against).
fn fusion_report(smoke: bool) {
    let input = if smoke { InputSet::Train } else { InputSet::Ref };
    let mut acc = og_vm::fusion::FusionAccumulator::new();
    let mut programs = 0u64;
    for name in og_workloads::NAMES {
        let program = og_workloads::by_name(name, input).program;
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run().unwrap_or_else(|e| panic!("{name}: workload must run: {e}"));
        acc.add(&program, vm.stats());
        programs += 1;
    }
    let corpus = og_fuzz::corpus::load_dir(&og_fuzz::corpus::corpus_dir())
        .expect("committed corpus must load");
    for (path, case) in corpus {
        let config =
            RunConfig { max_steps: case.oracle_config().max_steps, ..RunConfig::default() };
        let mut vm = Vm::new(&case.program, config);
        vm.run().unwrap_or_else(|e| panic!("{}: corpus case must run: {e}", path.display()));
        acc.add(&case.program, vm.stats());
        programs += 1;
    }
    let profile = acc.finish();

    let table = |seqs: &[(String, u64)], top: usize| {
        Json::Arr(
            seqs.iter()
                .take(top)
                .map(|(seq, count)| {
                    Json::Obj(vec![
                        ("seq".into(), Json::Str(seq.clone())),
                        ("count".into(), count.to_json()),
                        (
                            "share".into(),
                            (*count as f64 / profile.total_steps.max(1) as f64).to_json(),
                        ),
                    ])
                })
                .collect(),
        )
    };
    let report = Json::Obj(vec![
        ("input".into(), Json::Str(if smoke { "train" } else { "ref" }.into())),
        ("programs".into(), programs.to_json()),
        ("total_steps".into(), profile.total_steps.to_json()),
        ("pairs".into(), table(&profile.pairs, 12)),
        ("triples".into(), table(&profile.triples, 12)),
    ]);
    let headline = |seqs: &[(String, u64)]| {
        seqs.iter()
            .take(3)
            .map(|(seq, count)| {
                format!("{seq} {:.1}%", 100.0 * *count as f64 / profile.total_steps.max(1) as f64)
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "fusion/profile                   {} programs, {} steps; top pairs: {}; top triples: {}",
        programs,
        profile.total_steps,
        headline(&profile.pairs),
        headline(&profile.triples),
    );
    match og_lab::report::write_bench_report("fusion", &report) {
        Ok(path) => println!("fusion profile written to {}", path.display()),
        Err(e) => eprintln!("{e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vrp, bench_vm, bench_sim, bench_pipeline
}

fn main() {
    let smoke = std::env::var_os("OG_BENCH_SMOKE").is_some();
    if !smoke {
        benches();
    }
    throughput_report(smoke);
    vm_report(smoke);
    fusion_report(smoke);
}
