//! Criterion micro-benchmarks: analysis and simulation throughput.
//!
//! These measure the *tooling* (how fast VRP analyzes, the emulator
//! executes and the timing model simulates), complementing the figure
//! benches that measure the *reproduced system*. The headline series is
//! the **fused vs materialized** pipeline comparison: one streamed
//! emulate+simulate pass (`Vm::run_streamed` into the `Simulator` sink,
//! O(1) trace memory) against capture-then-replay through a `VecSink`
//! (O(steps) memory).
//!
//! Run with `cargo bench -p og-bench --bench micro_throughput`.
//!
//! With `OG_BENCH_SMOKE=1` the Criterion groups are skipped and only a
//! quick fused-vs-materialized measurement runs; either way the
//! comparison is written as machine-readable JSON to
//! `BENCH_throughput.json` in the target directory (override the
//! directory with `OG_BENCH_OUT`) so CI can track the perf trajectory.

use criterion::{criterion_group, Criterion, Throughput};
use og_core::{VrpConfig, VrpPass};
use og_json::{Json, ToJson};
use og_sim::{MachineConfig, SimResult, Simulator};
use og_vm::{RunConfig, VecSink, Vm};
use og_workloads::{compress, m88ksim, InputSet};
use std::time::{Duration, Instant};

fn bench_vrp(c: &mut Criterion) {
    let program = m88ksim(InputSet::Train).program;
    let insts = program.inst_count() as u64;
    let mut g = c.benchmark_group("vrp");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("analyze_m88ksim", |b| {
        b.iter(|| {
            let mut p = program.clone();
            VrpPass::new(VrpConfig::default()).run(&mut p)
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("emulate_compress", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, RunConfig::default());
            vm.run().expect("runs")
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let mut sink = VecSink::new();
    vm.run_streamed(&mut sink).expect("runs");
    let trace = sink.into_records();
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("timing_compress", |b| {
        let sim = Simulator::new(MachineConfig::default());
        b.iter(|| sim.run(&trace))
    });
    g.finish();
}

fn run_fused(program: &og_program::Program) -> SimResult {
    let mut vm = Vm::new(program, RunConfig::default());
    let mut sim = Simulator::new(MachineConfig::default());
    vm.run_streamed(&mut sim).expect("runs");
    sim.finish()
}

fn run_materialized(program: &og_program::Program) -> SimResult {
    let mut vm = Vm::new(program, RunConfig::default());
    let mut sink = VecSink::new();
    vm.run_streamed(&mut sink).expect("runs");
    Simulator::new(MachineConfig::default()).run(&sink.into_records())
}

fn bench_pipeline(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("fused_compress", |b| b.iter(|| run_fused(&program)));
    g.bench_function("materialized_compress", |b| b.iter(|| run_materialized(&program)));
    g.finish();
}

/// Median wall-clock of `samples` runs of `f` (one untimed warm-up).
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    f();
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

/// Measure fused vs materialized records/sec and write the JSON report.
fn throughput_report(smoke: bool) {
    let (input, samples) = if smoke { (InputSet::Train, 3) } else { (InputSet::Ref, 10) };
    let program = compress(input).program;
    let records = {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run().expect("runs").steps
    };

    // The two paths must agree bit-for-bit before their speeds mean
    // anything.
    assert_eq!(run_fused(&program), run_materialized(&program), "fused != materialized");

    let fused = median_secs(samples, || run_fused(&program));
    let materialized = median_secs(samples, || run_materialized(&program));
    let fused_rps = records as f64 / fused;
    let materialized_rps = records as f64 / materialized;
    println!(
        "pipeline/fused_vs_materialized   {:>12.0} rec/s fused, {:>12.0} rec/s materialized \
         (x{:.2}, {records} records, {} input)",
        fused_rps,
        materialized_rps,
        fused_rps / materialized_rps,
        if smoke { "train" } else { "ref" },
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("compress".into())),
        ("input".into(), Json::Str(if smoke { "train" } else { "ref" }.into())),
        ("mode".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("records".into(), records.to_json()),
        ("samples".into(), (samples as u64).to_json()),
        ("fused_records_per_sec".into(), fused_rps.to_json()),
        ("materialized_records_per_sec".into(), materialized_rps.to_json()),
    ]);
    match og_lab::report::write_bench_report("throughput", &report) {
        Ok(path) => println!("throughput report written to {}", path.display()),
        Err(e) => eprintln!("{e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vrp, bench_vm, bench_sim, bench_pipeline
}

fn main() {
    let smoke = std::env::var_os("OG_BENCH_SMOKE").is_some();
    if !smoke {
        benches();
    }
    throughput_report(smoke);
}
