//! Criterion micro-benchmarks: analysis and simulation throughput.
//!
//! These measure the *tooling* (how fast VRP analyzes, the emulator
//! executes and the timing model simulates), complementing the figure
//! benches that measure the *reproduced system*.
//!
//! Run with `cargo bench -p og-bench --bench micro_throughput`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use og_core::{VrpConfig, VrpPass};
use og_sim::{MachineConfig, Simulator};
use og_vm::{RunConfig, Vm};
use og_workloads::{compress, m88ksim, InputSet};

fn bench_vrp(c: &mut Criterion) {
    let program = m88ksim(InputSet::Train).program;
    let insts = program.inst_count() as u64;
    let mut g = c.benchmark_group("vrp");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("analyze_m88ksim", |b| {
        b.iter(|| {
            let mut p = program.clone();
            VrpPass::new(VrpConfig::default()).run(&mut p)
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("emulate_compress", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, RunConfig::default());
            vm.run().expect("runs")
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig { collect_trace: true, ..Default::default() });
    vm.run().expect("runs");
    let (trace, _, _) = vm.into_parts();
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("timing_compress", |b| {
        let sim = Simulator::new(MachineConfig::default());
        b.iter(|| sim.run(&trace))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vrp, bench_vm, bench_sim
}
criterion_main!(benches);
