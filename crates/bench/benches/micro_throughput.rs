//! Criterion micro-benchmarks: analysis and simulation throughput.
//!
//! These measure the *tooling* (how fast VRP analyzes, the emulator
//! executes and the timing model simulates), complementing the figure
//! benches that measure the *reproduced system*. The headline series is
//! the **fused vs materialized** pipeline comparison: one streamed
//! emulate+simulate pass (`Vm::run_streamed` into the `Simulator` sink,
//! O(1) trace memory) against capture-then-replay through a `VecSink`
//! (O(steps) memory).
//!
//! The second headline series is the **engine** comparison: the
//! pre-decoded flat engine (the default behind `Vm::run*`) against the
//! reference graph-walking interpreter (`Vm::run_reference*`), in
//! committed steps per second — plus the **trusted** variant
//! (`Vm::new_verified`), which verifies up front and drops the per-step
//! defensive check, reported as a delta over the plain flat engine.
//!
//! Run with `cargo bench -p og-bench --bench micro_throughput`.
//!
//! With `OG_BENCH_SMOKE=1` the Criterion groups are skipped and only the
//! quick fused-vs-materialized and flat-vs-reference measurements run;
//! either way the comparisons are written as machine-readable JSON to
//! `BENCH_throughput.json` and `BENCH_vm.json` in the target directory
//! (override the directory with `OG_BENCH_OUT`) so CI can track the
//! perf trajectory.

use criterion::{criterion_group, Criterion, Throughput};
use og_core::{VrpConfig, VrpPass};
use og_json::{Json, ToJson};
use og_sim::{MachineConfig, SimResult, Simulator};
use og_vm::{RunConfig, VecSink, Vm};
use og_workloads::{compress, m88ksim, InputSet};
use std::time::{Duration, Instant};

fn bench_vrp(c: &mut Criterion) {
    let program = m88ksim(InputSet::Train).program;
    let insts = program.inst_count() as u64;
    let mut g = c.benchmark_group("vrp");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("analyze_m88ksim", |b| {
        b.iter(|| {
            let mut p = program.clone();
            VrpPass::new(VrpConfig::default()).run(&mut p)
        })
    });
    g.finish();
}

fn bench_vm(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("vm");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("emulate_compress", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, RunConfig::default());
            vm.run().expect("runs")
        })
    });
    g.bench_function("emulate_compress_reference", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program, RunConfig::default());
            vm.run_reference().expect("runs")
        })
    });
    g.bench_function("emulate_compress_trusted", |b| {
        b.iter(|| {
            let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
            vm.run().expect("runs")
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let mut sink = VecSink::new();
    vm.run_streamed(&mut sink).expect("runs");
    let trace = sink.into_records();
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("timing_compress", |b| {
        let sim = Simulator::new(MachineConfig::default());
        b.iter(|| sim.run(&trace))
    });
    g.finish();
}

fn run_fused(program: &og_program::Program) -> SimResult {
    let mut vm = Vm::new(program, RunConfig::default());
    let mut sim = Simulator::new(MachineConfig::default());
    vm.run_streamed(&mut sim).expect("runs");
    sim.finish()
}

fn run_materialized(program: &og_program::Program) -> SimResult {
    let mut vm = Vm::new(program, RunConfig::default());
    let mut sink = VecSink::new();
    vm.run_streamed(&mut sink).expect("runs");
    Simulator::new(MachineConfig::default()).run(&sink.into_records())
}

fn bench_pipeline(c: &mut Criterion) {
    let program = compress(InputSet::Train).program;
    let mut vm = Vm::new(&program, RunConfig::default());
    let steps = vm.run().expect("runs").steps;
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(steps));
    g.bench_function("fused_compress", |b| b.iter(|| run_fused(&program)));
    g.bench_function("materialized_compress", |b| b.iter(|| run_materialized(&program)));
    g.finish();
}

/// Median wall-clock of `samples` runs of `f` (one untimed warm-up).
fn median_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    f();
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            criterion::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_secs_f64()
}

/// Measure fused vs materialized records/sec and write the JSON report.
fn throughput_report(smoke: bool) {
    let (input, samples) = if smoke { (InputSet::Train, 3) } else { (InputSet::Ref, 10) };
    let program = compress(input).program;
    let records = {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run().expect("runs").steps
    };

    // The two paths must agree bit-for-bit before their speeds mean
    // anything.
    assert_eq!(run_fused(&program), run_materialized(&program), "fused != materialized");

    let fused = median_secs(samples, || run_fused(&program));
    let materialized = median_secs(samples, || run_materialized(&program));
    let fused_rps = records as f64 / fused;
    let materialized_rps = records as f64 / materialized;
    println!(
        "pipeline/fused_vs_materialized   {:>12.0} rec/s fused, {:>12.0} rec/s materialized \
         (x{:.2}, {records} records, {} input)",
        fused_rps,
        materialized_rps,
        fused_rps / materialized_rps,
        if smoke { "train" } else { "ref" },
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("compress".into())),
        ("input".into(), Json::Str(if smoke { "train" } else { "ref" }.into())),
        ("mode".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("records".into(), records.to_json()),
        ("samples".into(), (samples as u64).to_json()),
        ("fused_records_per_sec".into(), fused_rps.to_json()),
        ("materialized_records_per_sec".into(), materialized_rps.to_json()),
    ]);
    match og_lab::report::write_bench_report("throughput", &report) {
        Ok(path) => println!("throughput report written to {}", path.display()),
        Err(e) => eprintln!("{e}"),
    }
}

/// Measure flat-engine vs reference-engine committed-steps/sec and write
/// the `BENCH_vm.json` report. The flat engine's pre-decoded hot loop is
/// the PR 5 tentpole; this is the number its ≥2× acceptance criterion is
/// judged on.
fn vm_report(smoke: bool) {
    // Always the Ref input: the engine comparison measures the hot loop,
    // and the Train run is short enough (~15k steps against a program of
    // comparable static size) that per-`Vm::new` setup — layout,
    // lowering, data-segment load — would dominate what is being
    // measured. A Ref run is ~5 ms, affordable even in smoke mode.
    let samples = if smoke { 3 } else { 10 };
    let program = compress(InputSet::Ref).program;

    // The engines must agree bit-for-bit before their speeds mean
    // anything (outcome incl. digest, and full dynamic statistics).
    let (flat_outcome, flat_stats) = {
        let mut vm = Vm::new(&program, RunConfig::default());
        let o = vm.run().expect("runs");
        (o, vm.stats().clone())
    };
    let (ref_outcome, ref_stats) = {
        let mut vm = Vm::new(&program, RunConfig::default());
        let o = vm.run_reference().expect("runs");
        (o, vm.stats().clone())
    };
    assert_eq!(flat_outcome, ref_outcome, "flat != reference outcome");
    assert_eq!(flat_stats, ref_stats, "flat != reference stats");
    let (trusted_outcome, trusted_stats) = {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        let o = vm.run().expect("runs");
        (o, vm.stats().clone())
    };
    assert_eq!(trusted_outcome, flat_outcome, "trusted != flat outcome");
    assert_eq!(trusted_stats, flat_stats, "trusted != flat stats");
    let steps = flat_outcome.steps;

    // Plain emulation (no sink): the golden-digest / oracle path.
    let flat = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run().expect("runs")
    });
    let reference = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run_reference().expect("runs")
    });
    // Streamed emulation: the fused pipeline path, with a sink that
    // forces every record to be produced but does no downstream work.
    let flat_streamed = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run_streamed(&mut og_vm::NullSink).expect("runs")
    });
    let reference_streamed = median_secs(samples, || {
        let mut vm = Vm::new(&program, RunConfig::default());
        vm.run_reference_streamed(&mut og_vm::NullSink).expect("runs")
    });
    // Trusted lowering: the verifier runs once up front (inside
    // `new_verified`, so its cost is charged to this series) and the hot
    // loop drops the per-step malformed-slot check.
    let trusted = median_secs(samples, || {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        vm.run().expect("runs")
    });
    let trusted_streamed = median_secs(samples, || {
        let mut vm = Vm::new_verified(&program, RunConfig::default()).expect("verifies");
        vm.run_streamed(&mut og_vm::NullSink).expect("runs")
    });

    let flat_sps = steps as f64 / flat;
    let reference_sps = steps as f64 / reference;
    let flat_streamed_sps = steps as f64 / flat_streamed;
    let reference_streamed_sps = steps as f64 / reference_streamed;
    let trusted_sps = steps as f64 / trusted;
    let trusted_streamed_sps = steps as f64 / trusted_streamed;
    println!(
        "vm/flat_vs_reference             {:>12.0} steps/s flat, {:>12.0} steps/s reference \
         (x{:.2}, plain)",
        flat_sps,
        reference_sps,
        flat_sps / reference_sps,
    );
    println!(
        "vm/flat_vs_reference_streamed    {:>12.0} steps/s flat, {:>12.0} steps/s reference \
         (x{:.2}, NullSink, {steps} steps, ref input)",
        flat_streamed_sps,
        reference_streamed_sps,
        flat_streamed_sps / reference_streamed_sps,
    );
    println!(
        "vm/trusted_vs_flat               {:>12.0} steps/s trusted, {:>12.0} steps/s flat \
         (x{:.2} plain, x{:.2} streamed; verify charged to trusted)",
        trusted_sps,
        flat_sps,
        trusted_sps / flat_sps,
        trusted_streamed_sps / flat_streamed_sps,
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("compress".into())),
        ("input".into(), Json::Str("ref".into())),
        ("mode".into(), Json::Str(if smoke { "smoke" } else { "full" }.into())),
        ("steps".into(), steps.to_json()),
        ("samples".into(), (samples as u64).to_json()),
        ("flat_steps_per_sec".into(), flat_sps.to_json()),
        ("reference_steps_per_sec".into(), reference_sps.to_json()),
        ("speedup".into(), (flat_sps / reference_sps).to_json()),
        ("flat_streamed_steps_per_sec".into(), flat_streamed_sps.to_json()),
        ("reference_streamed_steps_per_sec".into(), reference_streamed_sps.to_json()),
        ("streamed_speedup".into(), (flat_streamed_sps / reference_streamed_sps).to_json()),
        ("trusted_steps_per_sec".into(), trusted_sps.to_json()),
        ("trusted_streamed_steps_per_sec".into(), trusted_streamed_sps.to_json()),
        ("trusted_over_flat".into(), (trusted_sps / flat_sps).to_json()),
        ("trusted_streamed_over_flat".into(), (trusted_streamed_sps / flat_streamed_sps).to_json()),
    ]);
    match og_lab::report::write_bench_report("vm", &report) {
        Ok(path) => println!("vm engine report written to {}", path.display()),
        Err(e) => eprintln!("{e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_vrp, bench_vm, bench_sim, bench_pipeline
}

fn main() {
    let smoke = std::env::var_os("OG_BENCH_SMOKE").is_some();
    if !smoke {
        benches();
    }
    throughput_report(smoke);
    vm_report(smoke);
}
