//! Bench target regenerating the paper's Figure 2.
//!
//! Run with `cargo bench -p og-bench --bench fig2_vrp_width_hist`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig2(study));
}
