//! Bench target regenerating the paper's Table 3.
//!
//! Run with `cargo bench -p og-bench --bench table3_op_distribution`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::table3(study));
}
