//! Bench target regenerating the paper's Figure 13.
//!
//! Run with `cargo bench -p og-bench --bench fig13_hw_energy`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig13(study));
}
