//! Bench target regenerating the paper's Figure 3.
//!
//! Run with `cargo bench -p og-bench --bench fig3_vrp_structure_savings`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig3(study));
}
