//! Bench target regenerating the paper's Figure 12.
//!
//! Run with `cargo bench -p og-bench --bench fig12_data_size_dist`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig12(study));
}
