//! Bench target regenerating the paper's Figure 4.
//!
//! Run with `cargo bench -p og-bench --bench fig4_profiled_points`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig4(study));
}
