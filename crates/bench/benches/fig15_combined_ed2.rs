//! Bench target regenerating the paper's Figure 15.
//!
//! Run with `cargo bench -p og-bench --bench fig15_combined_ed2`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig15(study));
}
