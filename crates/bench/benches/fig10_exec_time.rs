//! Bench target regenerating the paper's Figure 10.
//!
//! Run with `cargo bench -p og-bench --bench fig10_exec_time`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig10(study));
}
