//! Bench target regenerating the paper's Figure 6.
//!
//! Run with `cargo bench -p og-bench --bench fig6_runtime_specialized`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig6(study));
}
