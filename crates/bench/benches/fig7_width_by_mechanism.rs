//! Bench target regenerating the paper's Figure 7.
//!
//! Run with `cargo bench -p og-bench --bench fig7_width_by_mechanism`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig7(study));
}
