//! Bench target regenerating the paper's useful-policy ablation.
//!
//! Run with `cargo bench -p og-bench --bench ablation_useful_policy`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::ablation_useful(study));
}
