//! Bench target regenerating the paper's Figure 9.
//!
//! Run with `cargo bench -p og-bench --bench fig9_structure_savings`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig9(study));
}
