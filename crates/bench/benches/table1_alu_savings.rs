//! Bench target regenerating the paper's Table 1 (ALU energy savings).
//!
//! Run with `cargo bench -p og-bench --bench table1_alu_savings`.

fn main() {
    println!("{}", og_lab::figures::table1());
}
