//! Bench target regenerating the paper's Figure 8.
//!
//! Run with `cargo bench -p og-bench --bench fig8_energy_savings`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig8(study));
}
