//! Bench target regenerating the paper's Figure 11.
//!
//! Run with `cargo bench -p og-bench --bench fig11_ed2`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig11(study));
}
