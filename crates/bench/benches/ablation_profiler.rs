//! Ablation: VRS sensitivity to the Calder value-table parameters
//! (table size and cleaning period, §3.3).
//!
//! Run with `cargo bench -p og-bench --bench ablation_profiler`.

use og_core::{VrsConfig, VrsPass};
use og_profile::ProfileConfig;
use og_workloads::{by_name, InputSet};

fn main() {
    println!("Ablation: value-profiler table size / cleaning period (VRS 50nJ)");
    println!(
        "{:>10} {:>8} {:>8} | {:>11} {:>12} {:>11}",
        "bench", "entries", "period", "specialized", "no benefit", "dependent"
    );
    println!("{}", "-".repeat(70));
    for bench in ["gcc", "vortex", "go"] {
        for (table_size, clean_period) in [(2, 256), (4, 1024), (8, 2048), (16, 1 << 14)] {
            let train = by_name(bench, InputSet::Train).program;
            let mut refp = by_name(bench, InputSet::Ref).program;
            let cfg = VrsConfig {
                profile: ProfileConfig { table_size, clean_period },
                ..Default::default()
            };
            let report = VrsPass::new(cfg).run(&mut refp, &train);
            println!(
                "{:>10} {:>8} {:>8} | {:>11} {:>12} {:>11}",
                bench,
                table_size,
                clean_period,
                report.count_fate(og_core::CandidateFate::Specialized),
                report.count_fate(og_core::CandidateFate::NoBenefit),
                report.count_fate(og_core::CandidateFate::Dependent),
            );
        }
    }
}
