//! Bench target for the soft-error fault campaign: sweeps seeded
//! single-bit strikes (register × flip position, memory, pc) across the
//! 8 workloads, classifies every run as Masked / SDC / Detected / Hang,
//! and writes `BENCH_fault.json`. The headline is the masked-fault rate
//! in gated (upper-slice) vs. ungated (live-slice) register positions —
//! the paper's narrow-operand claim restated as soft-error robustness.
//!
//! Run with `cargo bench -p og-bench --bench fault_campaign`
//! (`OG_FAULT_STRIKES` overrides the per-workload strike count).
//!
//! Exits nonzero if the sweep fails to demonstrate the taxonomy (no
//! masked or no SDC strikes at all) or if gated positions do not mask
//! more than ungated ones. Hangs are reported but not gated: whether a
//! given seed's strikes produce one is workload-dependent.

use og_lab::fault::{run_fault_campaign, FaultCampaignConfig};

fn main() {
    let mut cfg = FaultCampaignConfig::default();
    if let Ok(n) = std::env::var("OG_FAULT_STRIKES") {
        cfg.strikes_per_workload = n.parse().expect("OG_FAULT_STRIKES must be an integer");
    }
    let report = run_fault_campaign(&cfg);

    println!(
        "fault_campaign: {} strikes over {} workloads (seed {:#x})",
        report.strikes,
        report.per_workload.len(),
        cfg.seed
    );
    println!(
        "fault_campaign: total    masked {:>4}  sdc {:>4}  detected {:>4}  hang {:>4}",
        report.total.masked, report.total.sdc, report.total.detected, report.total.hang
    );
    for (name, steps, counts) in &report.per_workload {
        println!(
            "fault_campaign: {name:<10} masked {:>4}  sdc {:>4}  detected {:>4}  hang {:>4}  ({steps} golden steps)",
            counts.masked, counts.sdc, counts.detected, counts.hang
        );
    }
    println!(
        "fault_campaign: masked rate — gated slices {:.3} ({} strikes) vs ungated {:.3} ({} strikes)",
        report.masked_rate_gated(),
        report.gated.total(),
        report.masked_rate_ungated(),
        report.ungated.total()
    );

    match og_lab::report::write_bench_report("fault", &report.to_json()) {
        Ok(path) => println!("fault_campaign: wrote {}", path.display()),
        Err(e) => {
            eprintln!("fault_campaign: FAIL: {e}");
            std::process::exit(1);
        }
    }

    let mut failures = Vec::new();
    if report.total.masked == 0 {
        failures.push("no strike was masked".to_string());
    }
    if report.total.sdc == 0 {
        failures.push("no strike produced silent data corruption".to_string());
    }
    if report.gated.total() == 0 || report.ungated.total() == 0 {
        failures.push("sweep failed to cover both significance classes".to_string());
    }
    if report.masked_rate_gated() <= report.masked_rate_ungated() {
        failures.push(format!(
            "gated positions must mask more than ungated: {:.3} <= {:.3}",
            report.masked_rate_gated(),
            report.masked_rate_ungated()
        ));
    }
    if failures.is_empty() {
        println!("fault_campaign: taxonomy and significance-class gates hold");
    } else {
        for f in &failures {
            eprintln!("fault_campaign: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
