//! Bench target regenerating the paper's Figure 14.
//!
//! Run with `cargo bench -p og-bench --bench fig14_hw_structure`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig14(study));
}
