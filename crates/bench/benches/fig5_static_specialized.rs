//! Bench target regenerating the paper's Figure 5.
//!
//! Run with `cargo bench -p og-bench --bench fig5_static_specialized`.

fn main() {
    let study = og_lab::shared_study();
    println!("{}", og_lab::figures::fig5(study));
}
