//! Call graph and register access summaries.
//!
//! The interprocedural value-range propagation of §2.4 needs to know, at
//! every call site, which registers the callee may overwrite (directly or
//! through its own callees). [`WriteSummaries`] computes that set as a
//! fixpoint over the call graph, so registers a callee provably never
//! touches keep their range information across the call.
//!
//! The may-write set alone is not enough for the *backward* analyses
//! (def-use, liveness, useful-width demand): registers are global machine
//! state, so a callee may also **read** registers beyond its declared
//! arguments, and a register the callee writes only on *some* paths (a
//! conditional move, a store-side branch arm) passes the caller's value
//! through on the others. Treating every may-write as a kill — or every
//! call as reading only its arguments — lets the caller narrow or
//! dead-code away a definition the callee still observes, which is a
//! real miscompile (found by the coverage-guided fuzzer: a `cmov` in a
//! callee passed the caller's `or.d` result through, after the caller
//! had narrowed it to a byte). [`WriteSummaries`] therefore also tracks:
//!
//! * **must-writes** — registers written by a non-conditional definition
//!   on *every* path from entry to every `ret` (greatest fixpoint, so
//!   recursion and loops stay conservative). Only these may kill a
//!   caller-side definition or liveness.
//! * **reads** — registers possibly read before being written
//!   (use-before-def liveness into the function entry, arguments
//!   included). These become uses at every call site.

use crate::{Cfg, FuncId, Function, Program};
use og_isa::{Op, Reg, Target};

/// The program's static call graph (direct `jsr` edges only; OGA-64 has no
/// indirect calls, matching the paper's analysis scope).
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<Vec<FuncId>>,
    callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Build the call graph of `p`.
    pub fn new(p: &Program) -> CallGraph {
        let n = p.funcs.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for f in &p.funcs {
            for c in f.callees() {
                if !callees[f.id.index()].contains(&c) {
                    callees[f.id.index()].push(c);
                }
                if !callers[c.index()].contains(&f.id) {
                    callers[c.index()].push(f.id);
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions called directly by `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Functions that call `f` directly.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Functions in callee-before-caller order (cycles broken arbitrarily),
    /// starting the traversal from `entry` and then covering any functions
    /// not reachable from it.
    pub fn post_order(&self, entry: FuncId) -> Vec<FuncId> {
        let n = self.callees.len();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(FuncId, usize)> = Vec::new();
        let mut roots: Vec<FuncId> = vec![entry];
        roots.extend((0..n as u32).map(FuncId));
        for root in roots {
            if visited[root.index()] {
                continue;
            }
            visited[root.index()] = true;
            stack.push((root, 0));
            while let Some(&mut (f, ref mut i)) = stack.last_mut() {
                if *i < self.callees[f.index()].len() {
                    let c = self.callees[f.index()][*i];
                    *i += 1;
                    if !visited[c.index()] {
                        visited[c.index()] = true;
                        stack.push((c, 0));
                    }
                } else {
                    order.push(f);
                    stack.pop();
                }
            }
        }
        order
    }
}

/// Per-function register access summaries: which registers a call to the
/// function **may** modify, is **guaranteed** to modify, and may **read**
/// before writing — each including transitive callees.
#[derive(Debug, Clone)]
pub struct WriteSummaries {
    masks: Vec<u32>,
    must_masks: Vec<u32>,
    read_masks: Vec<u32>,
}

/// Registers a single non-call instruction *unconditionally* defines: a
/// conditional move only may-writes its destination.
fn certain_def(inst: &og_isa::Inst) -> Option<Reg> {
    if matches!(inst.op, Op::Cmov(_)) {
        None
    } else {
        inst.def()
    }
}

/// One function's must-write mask, given the current per-function
/// must-write assumptions: forward "available writes" dataflow
/// (intersection at joins, top-initialized, so loops and recursion
/// resolve to the conservative greatest fixpoint), collected over every
/// reachable `ret`. A function with no reachable `ret` never returns to
/// its caller, so it vacuously must-writes everything.
fn function_must(f: &Function, cfg: &Cfg, must: &[u32]) -> u32 {
    let nb = f.blocks.len();
    let mut out = vec![u32::MAX; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo() {
            let bi = b.index();
            // Entry starts with nothing written; joins intersect.
            let mut avail = if b == f.entry {
                0
            } else {
                let mut a = u32::MAX;
                for &pred in cfg.preds(b) {
                    a &= out[pred.index()];
                }
                a
            };
            for inst in &f.block(b).insts {
                if inst.op == Op::Jsr {
                    if let Target::Func(c) = inst.target {
                        avail |= must[c as usize];
                    }
                } else if let Some(d) = certain_def(inst) {
                    avail |= 1 << d.index();
                }
            }
            if out[bi] != avail {
                out[bi] = avail;
                changed = true;
            }
        }
    }
    let mut m = u32::MAX;
    for b in f.block_ids() {
        if cfg.is_reachable(b) && f.block(b).terminator().map(|t| t.op) == Some(Op::Ret) {
            m &= out[b.index()];
        }
    }
    m
}

/// One function's read mask, given the current per-function read and
/// must-write assumptions: backward use-before-def liveness into the
/// function entry. A call reads whatever its callee may read and kills
/// only what the callee must write.
fn function_reads(f: &Function, cfg: &Cfg, reads: &[u32], must: &[u32]) -> u32 {
    let nb = f.blocks.len();
    let mut live_in = vec![0u32; nb];
    let mut live_out = vec![0u32; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for &b in cfg.rpo().iter().rev() {
            let bi = b.index();
            let mut out = 0u32;
            for &s in cfg.succs(b) {
                out |= live_in[s.index()];
            }
            let mut live = out;
            for inst in f.block(b).insts.iter().rev() {
                if inst.op == Op::Jsr {
                    if let Target::Func(c) = inst.target {
                        live &= !must[c as usize];
                        live |= reads[c as usize];
                        continue;
                    }
                }
                if let Some(d) = inst.def() {
                    live &= !(1 << d.index());
                }
                // A cmov's destination is in `uses()`, so it stays live.
                for r in inst.uses() {
                    if !r.is_zero() {
                        live |= 1 << r.index();
                    }
                }
            }
            if out != live_out[bi] || live != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = live;
                changed = true;
            }
        }
    }
    live_in[f.entry.index()]
}

fn args_mask(f: &Function) -> u32 {
    let mut m = 0u32;
    for r in Reg::ARGS.iter().take(f.n_args as usize) {
        m |= 1 << r.index();
    }
    m
}

impl WriteSummaries {
    /// Compute summaries for every function of `p` (fixpoints; recursion is
    /// handled by iterating until stable).
    pub fn compute(p: &Program) -> WriteSummaries {
        let n = p.funcs.len();
        // Direct may-writes.
        let mut masks: Vec<u32> = p
            .funcs
            .iter()
            .map(|f| {
                let mut m = 0u32;
                for (_, i) in f.insts() {
                    if let Some(d) = i.def() {
                        m |= 1 << d.index();
                    }
                }
                // A function that returns a value writes v0 by convention.
                if f.returns_value {
                    m |= 1 << Reg::V0.index();
                }
                m
            })
            .collect();
        let cg = CallGraph::new(p);
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                let mut m = masks[f];
                for c in cg.callees(FuncId(f as u32)) {
                    m |= masks[c.index()];
                }
                if m != masks[f] {
                    masks[f] = m;
                    changed = true;
                }
            }
        }

        let cfgs: Vec<Cfg> = p.funcs.iter().map(Cfg::new).collect();

        // Must-writes: start optimistic at the may mask and shrink to the
        // greatest fixpoint (must ⊆ may by construction).
        let mut must_masks = masks.clone();
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, f) in p.funcs.iter().enumerate() {
                let m = function_must(f, &cfgs[fi], &must_masks) & masks[fi];
                if m != must_masks[fi] {
                    must_masks[fi] = m;
                    changed = true;
                }
            }
        }

        // Reads: start at the declared arguments and grow to a fixpoint.
        let mut read_masks: Vec<u32> = p.funcs.iter().map(args_mask).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for (fi, f) in p.funcs.iter().enumerate() {
                let m = function_reads(f, &cfgs[fi], &read_masks, &must_masks) | read_masks[fi];
                if m != read_masks[fi] {
                    read_masks[fi] = m;
                    changed = true;
                }
            }
        }

        WriteSummaries { masks, must_masks, read_masks }
    }

    /// Bitmask (bit *i* = register *i*) of registers `f` may write.
    pub fn mask(&self, f: FuncId) -> u32 {
        self.masks[f.index()]
    }

    /// Bitmask of registers a call to `f` is *guaranteed* to overwrite on
    /// every path that returns to the caller. Only these may kill a
    /// caller-side definition; see the module docs.
    pub fn must_mask(&self, f: FuncId) -> u32 {
        self.must_masks[f.index()]
    }

    /// Bitmask of registers a call to `f` may read before writing
    /// (arguments included — registers are global state, so callees can
    /// observe more than their declared parameters).
    pub fn read_mask(&self, f: FuncId) -> u32 {
        self.read_masks[f.index()]
    }

    /// May `f` write register `r`?
    pub fn writes(&self, f: FuncId, r: Reg) -> bool {
        self.masks[f.index()] & (1 << r.index()) != 0
    }

    /// Iterate over the registers `f` may write.
    pub fn written_regs(&self, f: FuncId) -> impl Iterator<Item = Reg> + '_ {
        let m = self.masks[f.index()];
        Reg::all().filter(move |r| m & (1 << r.index()) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{Cond, Width};

    fn chain_program() -> Program {
        // main -> a -> b; b writes t5, a writes t4, main writes t0.
        let mut pb = ProgramBuilder::new();
        pb.declare("a", 0);
        pb.declare("b", 0);
        let mut b = pb.function("b", 0);
        b.block("entry");
        b.ldi(Reg::T5, 9);
        b.ldi(Reg::V0, 1);
        b.ret();
        pb.finish(b);
        let mut a = pb.function("a", 0);
        a.block("entry");
        a.ldi(Reg::T4, 2);
        a.jsr("b");
        a.ret();
        pb.finish(a);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::T0, 1);
        m.jsr("a");
        m.halt();
        pb.finish(m);
        pb.build().unwrap()
    }

    #[test]
    fn call_graph_edges() {
        let p = chain_program();
        let cg = CallGraph::new(&p);
        let a = p.func_by_name("a").unwrap().id;
        let b = p.func_by_name("b").unwrap().id;
        let main = p.func_by_name("main").unwrap().id;
        assert_eq!(cg.callees(main), &[a]);
        assert_eq!(cg.callees(a), &[b]);
        assert_eq!(cg.callers(b), &[a]);
        let order = cg.post_order(main);
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(b) < pos(a));
        assert!(pos(a) < pos(main));
    }

    #[test]
    fn summaries_are_transitive() {
        let p = chain_program();
        let ws = WriteSummaries::compute(&p);
        let a = p.func_by_name("a").unwrap().id;
        let b = p.func_by_name("b").unwrap().id;
        assert!(ws.writes(b, Reg::T5));
        assert!(!ws.writes(b, Reg::T4));
        assert!(ws.writes(a, Reg::T5)); // through b
        assert!(ws.writes(a, Reg::T4));
        assert!(ws.writes(a, Reg::V0));
        assert!(!ws.writes(a, Reg::T0));
    }

    #[test]
    fn straight_line_writes_are_must_writes() {
        let p = chain_program();
        let ws = WriteSummaries::compute(&p);
        let a = p.func_by_name("a").unwrap().id;
        let b = p.func_by_name("b").unwrap().id;
        assert!(ws.must_mask(b) & (1 << Reg::T5.index()) != 0);
        assert!(ws.must_mask(a) & (1 << Reg::T4.index()) != 0);
        assert!(ws.must_mask(a) & (1 << Reg::T5.index()) != 0, "transitively certain");
        assert!(ws.must_mask(a) & (1 << Reg::T0.index()) == 0);
    }

    #[test]
    fn conditional_writes_are_not_must_writes() {
        // callee: cmov t4 (conditional by nature) and a branch-armed ldi
        // of t5 (conditional by control flow). Both are may-writes, and
        // neither is a must-write.
        let mut pb = ProgramBuilder::new();
        pb.declare("c", 1);
        let mut c = pb.function("c", 1);
        c.block("entry");
        c.cmov(Cond::Gt, Width::D, Reg::T4, Reg::A0, imm(7));
        c.beq(Reg::A0, "skip");
        c.block("write");
        c.ldi(Reg::T5, 1);
        c.br("skip");
        c.block("skip");
        c.ldi(Reg::T6, 2); // on every path: a must-write
        c.ret();
        pb.finish(c);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::A0, 1);
        m.jsr("c");
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let ws = WriteSummaries::compute(&p);
        let c = p.func_by_name("c").unwrap().id;
        assert!(ws.writes(c, Reg::T4) && ws.writes(c, Reg::T5));
        assert!(ws.must_mask(c) & (1 << Reg::T4.index()) == 0, "cmov is conditional");
        assert!(ws.must_mask(c) & (1 << Reg::T5.index()) == 0, "one arm skips the write");
        assert!(ws.must_mask(c) & (1 << Reg::T6.index()) != 0, "join write is certain");
    }

    #[test]
    fn reads_cover_non_argument_registers() {
        // callee reads t3 (never an argument) before writing anything,
        // and reads t0 only after writing it (not a read-before-write).
        let mut pb = ProgramBuilder::new();
        pb.declare("c", 0);
        let mut c = pb.function("c", 0);
        c.block("entry");
        c.add(Width::D, Reg::T4, Reg::T3, imm(1));
        c.ldi(Reg::T0, 5);
        c.add(Width::D, Reg::T5, Reg::T0, imm(1));
        c.ret();
        pb.finish(c);
        let mut m = pb.function("main", 1);
        m.block("entry");
        m.jsr("c");
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let ws = WriteSummaries::compute(&p);
        let c = p.func_by_name("c").unwrap().id;
        let m = p.func_by_name("main").unwrap().id;
        assert!(ws.read_mask(c) & (1 << Reg::T3.index()) != 0, "non-arg read");
        assert!(ws.read_mask(c) & (1 << Reg::T0.index()) == 0, "written before read");
        assert!(ws.read_mask(m) & (1 << Reg::T3.index()) != 0, "transitive through the call");
        assert!(ws.read_mask(m) & (1 << Reg::A0.index()) != 0, "declared args always count");
    }

    #[test]
    fn recursion_terminates() {
        let mut pb = ProgramBuilder::new();
        pb.declare("r", 1);
        let mut r = pb.function("r", 1);
        r.block("entry");
        r.beq(Reg::A0, "done");
        r.block("rec");
        r.sub(Width::W, Reg::A0, Reg::A0, imm(1));
        r.jsr("r");
        r.ret();
        r.block("done");
        r.ldi(Reg::V0, 0);
        r.ret();
        pb.finish(r);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::A0, 3);
        m.jsr("r");
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let ws = WriteSummaries::compute(&p);
        let r = p.func_by_name("r").unwrap().id;
        assert!(ws.writes(r, Reg::A0));
        assert!(ws.writes(r, Reg::V0));
        // The "done" arm writes only v0: a0 is not a must-write, and v0
        // is (both ret paths set it — "rec" via the recursive call).
        assert!(ws.must_mask(r) & (1 << Reg::A0.index()) == 0);
        assert!(ws.must_mask(r) & (1 << Reg::V0.index()) != 0);
        assert!(ws.read_mask(r) & (1 << Reg::A0.index()) != 0);
    }
}
