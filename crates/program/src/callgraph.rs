//! Call graph and register write summaries.
//!
//! The interprocedural value-range propagation of §2.4 needs to know, at
//! every call site, which registers the callee may overwrite (directly or
//! through its own callees). [`WriteSummaries`] computes that set as a
//! fixpoint over the call graph, so registers a callee provably never
//! touches keep their range information across the call.

use crate::{FuncId, Program};
use og_isa::Reg;

/// The program's static call graph (direct `jsr` edges only; OGA-64 has no
/// indirect calls, matching the paper's analysis scope).
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<Vec<FuncId>>,
    callers: Vec<Vec<FuncId>>,
}

impl CallGraph {
    /// Build the call graph of `p`.
    pub fn new(p: &Program) -> CallGraph {
        let n = p.funcs.len();
        let mut callees = vec![Vec::new(); n];
        let mut callers = vec![Vec::new(); n];
        for f in &p.funcs {
            for c in f.callees() {
                if !callees[f.id.index()].contains(&c) {
                    callees[f.id.index()].push(c);
                }
                if !callers[c.index()].contains(&f.id) {
                    callers[c.index()].push(f.id);
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions called directly by `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Functions that call `f` directly.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Functions in callee-before-caller order (cycles broken arbitrarily),
    /// starting the traversal from `entry` and then covering any functions
    /// not reachable from it.
    pub fn post_order(&self, entry: FuncId) -> Vec<FuncId> {
        let n = self.callees.len();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<(FuncId, usize)> = Vec::new();
        let mut roots: Vec<FuncId> = vec![entry];
        roots.extend((0..n as u32).map(FuncId));
        for root in roots {
            if visited[root.index()] {
                continue;
            }
            visited[root.index()] = true;
            stack.push((root, 0));
            while let Some(&mut (f, ref mut i)) = stack.last_mut() {
                if *i < self.callees[f.index()].len() {
                    let c = self.callees[f.index()][*i];
                    *i += 1;
                    if !visited[c.index()] {
                        visited[c.index()] = true;
                        stack.push((c, 0));
                    }
                } else {
                    order.push(f);
                    stack.pop();
                }
            }
        }
        order
    }
}

/// Per-function register write summaries: the set of registers a call to
/// the function may modify, including through transitive callees.
#[derive(Debug, Clone)]
pub struct WriteSummaries {
    masks: Vec<u32>,
}

impl WriteSummaries {
    /// Compute summaries for every function of `p` (fixpoint; recursion is
    /// handled by iterating until stable).
    pub fn compute(p: &Program) -> WriteSummaries {
        let n = p.funcs.len();
        // Direct writes.
        let mut masks: Vec<u32> = p
            .funcs
            .iter()
            .map(|f| {
                let mut m = 0u32;
                for (_, i) in f.insts() {
                    if let Some(d) = i.def() {
                        m |= 1 << d.index();
                    }
                }
                // A function that returns a value writes v0 by convention.
                if f.returns_value {
                    m |= 1 << Reg::V0.index();
                }
                m
            })
            .collect();
        let cg = CallGraph::new(p);
        let mut changed = true;
        while changed {
            changed = false;
            for f in 0..n {
                let mut m = masks[f];
                for c in cg.callees(FuncId(f as u32)) {
                    m |= masks[c.index()];
                }
                if m != masks[f] {
                    masks[f] = m;
                    changed = true;
                }
            }
        }
        WriteSummaries { masks }
    }

    /// Bitmask (bit *i* = register *i*) of registers `f` may write.
    pub fn mask(&self, f: FuncId) -> u32 {
        self.masks[f.index()]
    }

    /// May `f` write register `r`?
    pub fn writes(&self, f: FuncId, r: Reg) -> bool {
        self.masks[f.index()] & (1 << r.index()) != 0
    }

    /// Iterate over the registers `f` may write.
    pub fn written_regs(&self, f: FuncId) -> impl Iterator<Item = Reg> + '_ {
        let m = self.masks[f.index()];
        Reg::all().filter(move |r| m & (1 << r.index()) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::Width;

    fn chain_program() -> Program {
        // main -> a -> b; b writes t5, a writes t4, main writes t0.
        let mut pb = ProgramBuilder::new();
        pb.declare("a", 0);
        pb.declare("b", 0);
        let mut b = pb.function("b", 0);
        b.block("entry");
        b.ldi(Reg::T5, 9);
        b.ldi(Reg::V0, 1);
        b.ret();
        pb.finish(b);
        let mut a = pb.function("a", 0);
        a.block("entry");
        a.ldi(Reg::T4, 2);
        a.jsr("b");
        a.ret();
        pb.finish(a);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::T0, 1);
        m.jsr("a");
        m.halt();
        pb.finish(m);
        pb.build().unwrap()
    }

    #[test]
    fn call_graph_edges() {
        let p = chain_program();
        let cg = CallGraph::new(&p);
        let a = p.func_by_name("a").unwrap().id;
        let b = p.func_by_name("b").unwrap().id;
        let main = p.func_by_name("main").unwrap().id;
        assert_eq!(cg.callees(main), &[a]);
        assert_eq!(cg.callees(a), &[b]);
        assert_eq!(cg.callers(b), &[a]);
        let order = cg.post_order(main);
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        assert!(pos(b) < pos(a));
        assert!(pos(a) < pos(main));
    }

    #[test]
    fn summaries_are_transitive() {
        let p = chain_program();
        let ws = WriteSummaries::compute(&p);
        let a = p.func_by_name("a").unwrap().id;
        let b = p.func_by_name("b").unwrap().id;
        assert!(ws.writes(b, Reg::T5));
        assert!(!ws.writes(b, Reg::T4));
        assert!(ws.writes(a, Reg::T5)); // through b
        assert!(ws.writes(a, Reg::T4));
        assert!(ws.writes(a, Reg::V0));
        assert!(!ws.writes(a, Reg::T0));
    }

    #[test]
    fn recursion_terminates() {
        let mut pb = ProgramBuilder::new();
        pb.declare("r", 1);
        let mut r = pb.function("r", 1);
        r.block("entry");
        r.beq(Reg::A0, "done");
        r.block("rec");
        r.sub(Width::W, Reg::A0, Reg::A0, imm(1));
        r.jsr("r");
        r.ret();
        r.block("done");
        r.ldi(Reg::V0, 0);
        r.ret();
        pb.finish(r);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::A0, 3);
        m.jsr("r");
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let ws = WriteSummaries::compute(&p);
        let r = p.func_by_name("r").unwrap().id;
        assert!(ws.writes(r, Reg::A0));
        assert!(ws.writes(r, Reg::V0));
    }
}
