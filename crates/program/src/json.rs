//! og-json serialization of whole programs.
//!
//! This is the storage format of the fuzz regression corpus
//! (`crates/fuzz/corpus/*.og.json`): a decoded program is re-verified, so
//! a corrupt or hand-mangled corpus file fails loudly at load time rather
//! than feeding the differential oracle a structurally invalid program.
//!
//! Data-segment bytes are hex strings (two digits per byte) — arrays of
//! numbers would make a 4 KiB segment unreadably long — and every data
//! item records the address the original layout assigned, which decoding
//! re-derives and cross-checks so address-dependent programs round-trip
//! exactly.

use crate::{Block, BlockId, DataSegment, FuncId, Function, Program};
use og_json::{Error, FromJson, Json, ToJson};

impl ToJson for FuncId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for FuncId {
    fn from_json(json: &Json) -> Result<FuncId, Error> {
        Ok(FuncId(u32::from_json(json)?))
    }
}

impl ToJson for BlockId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for BlockId {
    fn from_json(json: &Json) -> Result<BlockId, Error> {
        Ok(BlockId(u32::from_json(json)?))
    }
}

fn bytes_to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xF) as u32, 16).unwrap());
    }
    s
}

fn hex_to_bytes(s: &str) -> Result<Vec<u8>, Error> {
    if !s.len().is_multiple_of(2) {
        return Err(Error::new("hex string has odd length"));
    }
    let digit =
        |c: char| c.to_digit(16).ok_or_else(|| Error::new(format!("invalid hex digit `{c}`")));
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut chars = s.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        out.push((digit(hi)? * 16 + digit(lo)?) as u8);
    }
    Ok(out)
}

impl ToJson for DataSegment {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.items()
                .iter()
                .map(|item| {
                    Json::Obj(vec![
                        ("name".into(), item.name.to_json()),
                        ("addr".into(), item.addr.to_json()),
                        ("hex".into(), Json::Str(bytes_to_hex(&item.bytes))),
                    ])
                })
                .collect(),
        )
    }
}

impl FromJson for DataSegment {
    fn from_json(json: &Json) -> Result<DataSegment, Error> {
        let items = json.as_arr().ok_or_else(|| {
            Error::new(format!("data segment must be an array, found {}", json.kind()))
        })?;
        let mut seg = DataSegment::new();
        for item in items {
            let name: String = item.field("name")?;
            let addr: u64 = item.field("addr")?;
            let hex: String = item.field("hex")?;
            let bytes = hex_to_bytes(&hex).map_err(|e| e.in_field("hex"))?;
            let assigned = seg.define(&name, bytes);
            if assigned != addr {
                return Err(Error::new(format!(
                    "data item `{name}` re-laid-out at {assigned:#x}, file says {addr:#x} \
                     (items out of layout order?)"
                )));
            }
        }
        Ok(seg)
    }
}

impl ToJson for Block {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), self.label.to_json()),
            ("insts".into(), self.insts.to_json()),
        ])
    }
}

impl FromJson for Block {
    fn from_json(json: &Json) -> Result<Block, Error> {
        Ok(Block { label: json.field("label")?, insts: json.field("insts")? })
    }
}

impl ToJson for Function {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), self.id.to_json()),
            ("name".into(), self.name.to_json()),
            ("n_args".into(), self.n_args.to_json()),
            ("returns_value".into(), self.returns_value.to_json()),
            ("entry".into(), self.entry.to_json()),
            ("blocks".into(), self.blocks.to_json()),
        ])
    }
}

impl FromJson for Function {
    fn from_json(json: &Json) -> Result<Function, Error> {
        Ok(Function {
            id: json.field("id")?,
            name: json.field("name")?,
            blocks: json.field("blocks")?,
            entry: json.field("entry")?,
            n_args: json.field("n_args")?,
            returns_value: json.field("returns_value")?,
        })
    }
}

impl ToJson for Program {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("entry".into(), self.entry.to_json()),
            ("data".into(), self.data.to_json()),
            ("funcs".into(), self.funcs.to_json()),
        ])
    }
}

impl Program {
    /// Decode a program from JSON **without** verifying it.
    ///
    /// [`FromJson`] verifies fail-fast, which is right for trusted inputs
    /// (the fuzz corpus) but wrong for a service: it reports one error
    /// and conflates "syntactically unreadable" with "structurally
    /// invalid". A service decodes with this, then runs
    /// [`Program::verify_all`] to collect *every* structural error for
    /// the reject response.
    pub fn from_json_unverified(json: &Json) -> Result<Program, Error> {
        Ok(Program {
            funcs: json.field("funcs")?,
            entry: json.field("entry")?,
            data: json.field("data")?,
        })
    }
}

impl FromJson for Program {
    fn from_json(json: &Json) -> Result<Program, Error> {
        let program = Program::from_json_unverified(json)?;
        program
            .verify()
            .map_err(|e| Error::new(format!("decoded program fails verification: {e}")))?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, imm, ProgramBuilder};
    use og_isa::{Reg, Width};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        pb.data_bytes("raw", vec![0x00, 0x7F, 0x80, 0xFF]);
        pb.data_quads("tbl", &[1, -1, i64::MAX]);
        let mut h = pb.function("helper", 1);
        h.block("entry");
        h.add(Width::W, Reg::V0, Reg::A0, imm(1));
        h.ret();
        pb.finish(h);
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.la(Reg::T0, "tbl");
        f.ld(Width::D, Reg::T1, Reg::T0, 0);
        f.mov(Width::D, Reg::A0, Reg::T1);
        f.jsr("helper");
        f.out(Width::B, Reg::V0);
        f.halt();
        pb.finish(f);
        pb.build().unwrap()
    }

    #[test]
    fn program_roundtrips_exactly() {
        let p = sample();
        let text = og_json::to_string(&p).unwrap();
        let back: Program = og_json::from_str(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn generated_programs_roundtrip() {
        for seed in 0..10 {
            let p = generate::generate_program(&generate::GenConfig { seed, ..Default::default() });
            let text = og_json::to_string(&p).unwrap();
            let back: Program = og_json::from_str(&text).unwrap();
            assert_eq!(back, p, "seed {seed}");
        }
    }

    #[test]
    fn hex_codec_roundtrips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_to_bytes(&bytes_to_hex(&bytes)).unwrap(), bytes);
        assert!(hex_to_bytes("0").is_err());
        assert!(hex_to_bytes("zz").is_err());
    }

    #[test]
    fn decoding_verifies_the_program() {
        let p = sample();
        let mut json = p.to_json();
        // Break the program: retarget the jsr at a nonexistent function.
        if let Json::Obj(fields) = &mut json {
            let funcs = fields.iter_mut().find(|(k, _)| k == "funcs").unwrap();
            let text = og_json::render(&funcs.1).unwrap().replace("{\"func\":0}", "{\"func\":9}");
            funcs.1 = og_json::parse(&text).unwrap();
        }
        let err = Program::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("fails verification"), "{err}");
    }

    #[test]
    fn data_addresses_are_cross_checked() {
        let p = sample();
        let text = og_json::to_string(&p.data).unwrap();
        let tampered = text.replace("\"addr\":77309411328", "\"addr\":12345");
        assert_ne!(text, tampered, "expected the GLOBAL_BASE address literal in {text}");
        assert!(og_json::from_str::<DataSegment>(&tampered).is_err());
    }
}
