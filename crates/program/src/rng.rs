//! A small deterministic pseudo-random number generator (SplitMix64).
//!
//! Used by the workload input generators and the random program generator
//! so that every experiment in the repository is byte-reproducible without
//! depending on the evolving APIs of external RNG crates.

/// SplitMix64: fast, well-distributed, and stable across platforms.
///
/// ```
/// use og_program::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let v = (self.next_u64() as u128 * span) >> 64;
        (lo as i128 + v as i128) as i64
    }

    /// A boolean that is true with probability `num/denom`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }

    /// Pick a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Fill a byte buffer.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_bounds() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(2);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..5000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn reasonably_uniform() {
        let mut r = SplitMix64::new(4);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }
}
