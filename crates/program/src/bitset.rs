//! A compact growable bit set used by the dataflow analyses.

use serde::{Deserialize, Serialize};

/// A fixed-capacity bit set over `usize` indices.
///
/// ```
/// use og_program::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(7);
/// s.insert(63);
/// s.insert(64);
/// assert!(s.contains(63) && s.contains(64) && !s.contains(8));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![7, 63, 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> BitSet {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit index {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Remove `i`.
    pub fn remove(&mut self, i: usize) {
        if i < self.capacity {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Does the set contain `i`?
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Union with another set of the same capacity; returns true if this
    /// set changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self = (self - kill) ∪ gen`, the reaching-definitions transfer.
    pub fn transfer(&mut self, gen: &BitSet, kill: &BitSet) {
        for ((a, g), k) in self.words.iter_mut().zip(&gen.words).zip(&kill.words) {
            *a = (*a & !k) | g;
        }
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(69));
    }

    #[test]
    fn transfer_applies_gen_kill() {
        let mut inset = BitSet::new(10);
        inset.insert(1);
        inset.insert(2);
        let mut gen = BitSet::new(10);
        gen.insert(3);
        let mut kill = BitSet::new(10);
        kill.insert(1);
        inset.transfer(&gen, &kill);
        assert_eq!(inset.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(8).insert(8);
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(5);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
    }
}
