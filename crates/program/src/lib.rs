//! # og-program: binary-level program representation
//!
//! This crate plays the role that the Alto link-time optimizer plays in the
//! paper: it gives the operand-gating analyses a binary-level view of a
//! program — functions, basic blocks, a control-flow graph with dominators
//! and natural loops, reaching-definition/def-use webs that span basic
//! blocks, and a call graph with register write summaries for
//! interprocedural propagation.
//!
//! Programs are constructed three ways:
//!
//! * programmatically with [`ProgramBuilder`] (how the workload suite is
//!   written),
//! * by parsing the textual assembly dialect with [`parse_asm`],
//! * randomly, with [`generate::generate_program`], for property-based
//!   differential testing of the analyses.
//!
//! However constructed, programs are **verified** before anything runs
//! them: a multi-pass verifier ([`Program::verify_all`], module `verify`)
//! checks structure, operand shapes and control-flow targets in dependency
//! order, reports *every* defect at once, and establishes the invariant
//! that an accepted program can never produce a structural error in the
//! VM — the contract `og-vm` spends by lowering verified programs with
//! the per-step defensive checks removed. [`Program::verify`] is the
//! fail-fast form; both also hand back a [`ProgramContext`] of proven
//! facts (reachability, recursion freedom, bounded call depth) on the
//! collect-all path.
//!
//! ```
//! use og_program::{ProgramBuilder, imm};
//! use og_isa::{Reg, Width};
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0);
//! f.block("entry");
//! f.ldi(Reg::T0, 41);
//! f.add(Width::D, Reg::T0, Reg::T0, imm(1));
//! f.out(Width::B, Reg::T0);
//! f.halt();
//! pb.finish(f);
//! let program = pb.build().unwrap();
//! assert_eq!(program.func(program.entry).blocks.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod bitset;
mod builder;
mod callgraph;
mod cfg;
mod data;
mod dataflow;
mod function;
pub mod generate;
mod ids;
mod json;
mod layout;
mod program;
pub mod rng;
mod verify;

pub use asm::{parse_asm, program_to_asm, AsmError};
pub use bitset::BitSet;
pub use builder::BuildError;
pub use builder::{imm, FunctionBuilder, ProgramBuilder};
pub use callgraph::{CallGraph, WriteSummaries};
pub use cfg::{Cfg, Dominators, Loop, LoopForest};
pub use data::{DataItem, DataSegment, GLOBAL_BASE, STACK_BASE, STACK_SIZE};
pub use dataflow::{DefId, DefSite, DefUse, Liveness};
pub use function::{Block, Function};
pub use ids::{BlockId, BlockRef, FuncId, InstRef};
pub use layout::{Layout, INST_BYTES, TEXT_BASE};
pub use program::{Program, StaticStats};
pub use verify::{ProgramContext, VerifyError};
