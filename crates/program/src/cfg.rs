//! Control-flow graph, dominator tree and natural-loop detection.

use crate::{BlockId, Function};

/// The control-flow graph of one function: successor/predecessor lists and
/// a reverse post-order.
#[derive(Debug, Clone)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<usize>,
}

impl Cfg {
    /// Build the CFG of `f`.
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in f.block_ids() {
            for s in f.block(b).successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        // Depth-first post-order from the entry, reversed.
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(f.entry, 0)];
        visited[f.entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in post.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg { succs, preds, rpo: post, rpo_index }
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Reachable blocks in reverse post-order.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `b` in the reverse post-order, if reachable.
    pub fn rpo_index(&self, b: BlockId) -> Option<usize> {
        let i = self.rpo_index[b.index()];
        (i != usize::MAX).then_some(i)
    }

    /// Is `b` reachable from the entry?
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index(b).is_some()
    }

    /// Number of blocks (including unreachable ones).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the function has no blocks (never for verified programs).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

/// Dominator tree, computed with the Cooper–Harvey–Kennedy iterative
/// algorithm over the reverse post-order.
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `cfg` (entry assumed to be the first RPO
    /// block).
    pub fn new(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let rpo = cfg.rpo();
        if rpo.is_empty() {
            return Dominators { idom, rpo_index: vec![usize::MAX; n] };
        }
        let entry = rpo[0];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo[1..] {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &cfg.rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index: cfg.rpo_index.clone() }
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Does `a` dominate `b`? (Reflexive: every block dominates itself.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

/// One natural loop: a header plus the body blocks of all back edges that
/// target the header.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks in the loop, header included, sorted by id.
    pub body: Vec<BlockId>,
    /// Sources of the back edges (`latch → header`).
    pub latches: Vec<BlockId>,
    /// Nesting depth (outermost loops have depth 1).
    pub depth: u32,
}

impl Loop {
    /// Does the loop contain `b`?
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// All natural loops of a function, with per-block innermost-loop lookup.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
    innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detect the natural loops of `cfg` using `dom`.
    pub fn new(cfg: &Cfg, dom: &Dominators) -> LoopForest {
        let n = cfg.len();
        // Collect back edges grouped by header.
        let mut by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for &b in cfg.rpo() {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    by_header[s.index()].push(b);
                }
            }
        }
        let mut loops = Vec::new();
        for (h, latches) in by_header.into_iter().enumerate() {
            if latches.is_empty() {
                continue;
            }
            let header = BlockId(h as u32);
            // Natural loop body: header + blocks that reach a latch without
            // passing through the header.
            let mut in_body = vec![false; n];
            in_body[h] = true;
            let mut stack = Vec::new();
            for &l in &latches {
                if !in_body[l.index()] {
                    in_body[l.index()] = true;
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if !in_body[p.index()] {
                        in_body[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let body: Vec<BlockId> =
                (0..n as u32).map(BlockId).filter(|b| in_body[b.index()]).collect();
            loops.push(Loop { header, body, latches, depth: 0 });
        }
        // Nesting depth: loop A nests in B if B's body contains A's header
        // and A != B.
        let depths: Vec<u32> = (0..loops.len())
            .map(|i| {
                1 + loops
                    .iter()
                    .enumerate()
                    .filter(|(j, l)| {
                        *j != i && l.contains(loops[i].header) && l.body.len() > loops[i].body.len()
                    })
                    .count() as u32
            })
            .collect();
        for (l, d) in loops.iter_mut().zip(depths) {
            l.depth = d;
        }
        // Innermost loop per block = containing loop with the smallest body.
        let mut innermost: Vec<Option<usize>> = vec![None; n];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.body {
                match innermost[b.index()] {
                    Some(j) if loops[j].body.len() <= l.body.len() => {}
                    _ => innermost[b.index()] = Some(i),
                }
            }
        }
        LoopForest { loops, innermost }
    }

    /// All loops.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.innermost[b.index()].map(|i| &self.loops[i])
    }

    /// Loop nesting depth of `b` (0 = not in any loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost(b).map_or(0, |l| l.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{CmpKind, Reg, Width};

    /// entry → loop{ body → latch } → exit, with an if/else diamond in the
    /// loop body.
    fn looped() -> crate::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 0);
        f.block("head");
        f.cmp(CmpKind::Lt, Width::D, Reg::T1, Reg::T0, imm(10));
        f.beq(Reg::T1, "exit");
        f.block("body");
        f.and(Width::D, Reg::T2, Reg::T0, imm(1));
        f.bne(Reg::T2, "odd");
        f.block("even_case");
        f.add(Width::D, Reg::T3, Reg::T0, imm(2));
        f.br("latch");
        f.block("odd");
        f.add(Width::D, Reg::T3, Reg::T0, imm(3));
        f.block("latch");
        f.add(Width::D, Reg::T0, Reg::T0, imm(1));
        f.br("head");
        f.block("exit");
        f.halt();
        pb.finish(f);
        pb.build().unwrap()
    }

    #[test]
    fn cfg_edges() {
        let p = looped();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        // head (block 1) has preds entry(0) and latch(5)
        assert_eq!(cfg.preds(BlockId(1)).len(), 2);
        // body (2) branches to odd (4) and even_case (3)
        let mut s = cfg.succs(BlockId(2)).to_vec();
        s.sort();
        assert_eq!(s, vec![BlockId(3), BlockId(4)]);
        assert_eq!(cfg.rpo()[0], BlockId(0));
        assert!(cfg.is_reachable(BlockId(6)));
    }

    #[test]
    fn dominators() {
        let p = looped();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        // head dominates everything in the loop and the exit.
        assert!(dom.dominates(BlockId(1), BlockId(5)));
        assert!(dom.dominates(BlockId(1), BlockId(6)));
        // the two arms don't dominate the latch.
        assert!(!dom.dominates(BlockId(3), BlockId(5)));
        assert!(!dom.dominates(BlockId(4), BlockId(5)));
        // body dominates both arms and the latch.
        assert!(dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(2), BlockId(5)));
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(5)), Some(BlockId(2)));
    }

    #[test]
    fn loop_detection() {
        let p = looped();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        let lf = LoopForest::new(&cfg, &dom);
        assert_eq!(lf.loops().len(), 1);
        let l = &lf.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(5)]);
        assert_eq!(l.depth, 1);
        // Loop contains head, body, both arms and the latch — not entry/exit.
        assert_eq!(l.body, vec![BlockId(1), BlockId(2), BlockId(3), BlockId(4), BlockId(5)]);
        assert!(lf.innermost(BlockId(3)).is_some());
        assert!(lf.innermost(BlockId(0)).is_none());
        assert_eq!(lf.depth_of(BlockId(5)), 1);
        assert_eq!(lf.depth_of(BlockId(6)), 0);
    }

    #[test]
    fn nested_loops_get_depths() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 0);
        f.block("outer");
        f.ldi(Reg::T1, 0);
        f.block("inner");
        f.add(Width::D, Reg::T1, Reg::T1, imm(1));
        f.cmp(CmpKind::Lt, Width::D, Reg::T2, Reg::T1, imm(5));
        f.bne(Reg::T2, "inner");
        f.block("outer_latch");
        f.add(Width::D, Reg::T0, Reg::T0, imm(1));
        f.cmp(CmpKind::Lt, Width::D, Reg::T2, Reg::T0, imm(5));
        f.bne(Reg::T2, "outer");
        f.block("exit");
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        let lf = LoopForest::new(&cfg, &dom);
        assert_eq!(lf.loops().len(), 2);
        let inner = lf.innermost(BlockId(2)).unwrap();
        assert_eq!(inner.header, BlockId(2));
        assert_eq!(inner.depth, 2);
        assert_eq!(lf.depth_of(BlockId(3)), 1);
    }
}
