//! Fluent construction of programs and functions.

use crate::{Block, DataSegment, FuncId, Function, Program, VerifyError};
use og_isa::{CmpKind, Cond, Inst, MemRef, Op, Operand, Reg, Target, Width};
use std::collections::HashMap;
use std::fmt;

/// Shorthand for an immediate operand.
///
/// ```
/// use og_program::imm;
/// assert_eq!(imm(5), og_isa::Operand::Imm(5));
/// ```
pub fn imm(v: i64) -> Operand {
    Operand::Imm(v)
}

/// Errors produced when finalizing a built program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that no block defines.
    UnknownLabel {
        /// Function containing the branch.
        func: String,
        /// The unresolved label.
        label: String,
    },
    /// A `jsr` referenced an unknown function name.
    UnknownFunction {
        /// The unresolved function name.
        name: String,
    },
    /// The final block of a function lacks a terminator.
    MissingTerminator {
        /// Function name.
        func: String,
    },
    /// A function has no blocks.
    NoBlocks {
        /// Function name.
        func: String,
    },
    /// A function was declared but never given a body.
    UndefinedFunction {
        /// The declared-but-missing function name.
        name: String,
    },
    /// The assembled program failed structural verification.
    Verify(VerifyError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownLabel { func, label } => {
                write!(f, "unknown label `{label}` in function `{func}`")
            }
            BuildError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            BuildError::MissingTerminator { func } => {
                write!(f, "function `{func}` ends without a terminator")
            }
            BuildError::NoBlocks { func } => write!(f, "function `{func}` has no blocks"),
            BuildError::UndefinedFunction { name } => {
                write!(f, "function `{name}` was declared but never defined")
            }
            BuildError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<VerifyError> for BuildError {
    fn from(e: VerifyError) -> Self {
        BuildError::Verify(e)
    }
}

#[derive(Debug, Clone)]
enum SymTarget {
    BrLabel(String),
    BcLabel(String),
    BcLabels(String, String),
    JsrName(String),
}

#[derive(Debug)]
struct PendingBlock {
    label: String,
    insts: Vec<Inst>,
    syms: Vec<(usize, SymTarget)>,
}

/// Builds one function; created by [`ProgramBuilder::function`], finished
/// with [`ProgramBuilder::finish`].
///
/// Instructions are appended to the *current block* (opened with
/// [`FunctionBuilder::block`]). Emitting past a terminator or before the
/// first block is a programming error and panics.
#[derive(Debug)]
pub struct FunctionBuilder {
    id: FuncId,
    name: String,
    n_args: u8,
    returns_value: bool,
    blocks: Vec<PendingBlock>,
    data_syms: HashMap<String, u64>,
}

impl FunctionBuilder {
    /// Mark whether this function returns a value in `v0` (defaults to
    /// `true`).
    pub fn returns_value(&mut self, yes: bool) -> &mut Self {
        self.returns_value = yes;
        self
    }

    /// Open a new basic block labelled `label`. The previous block, if it
    /// lacks a terminator, will fall through to this one (an explicit `br`
    /// is inserted when the program is built).
    ///
    /// # Panics
    ///
    /// Panics if the label is reused within this function.
    pub fn block(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        assert!(
            !self.blocks.iter().any(|b| b.label == label),
            "label `{label}` reused in function `{}`",
            self.name
        );
        self.blocks.push(PendingBlock { label, insts: Vec::new(), syms: Vec::new() });
        self
    }

    fn cur(&mut self) -> &mut PendingBlock {
        let name = &self.name;
        let b = self
            .blocks
            .last_mut()
            .unwrap_or_else(|| panic!("no block opened yet in function `{name}`"));
        if b.insts.last().is_some_and(|i| i.op.is_terminator()) {
            panic!("instruction emitted after terminator in block `{}` of `{name}`", b.label);
        }
        b
    }

    /// Append a raw instruction.
    pub fn raw(&mut self, inst: Inst) -> &mut Self {
        self.cur().insts.push(inst);
        self
    }

    /// `dst = value` (immediate materialization).
    pub fn ldi(&mut self, dst: Reg, value: i64) -> &mut Self {
        self.raw(Inst::ldi(dst, value))
    }

    /// Load the address of data symbol `sym` (optionally displaced).
    ///
    /// # Panics
    ///
    /// Panics if the symbol was not defined before this function was
    /// created.
    pub fn la(&mut self, dst: Reg, sym: &str) -> &mut Self {
        self.la_off(dst, sym, 0)
    }

    /// Load `address_of(sym) + off`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is unknown.
    pub fn la_off(&mut self, dst: Reg, sym: &str, off: i64) -> &mut Self {
        let base = *self.data_syms.get(sym).unwrap_or_else(|| {
            panic!("unknown data symbol `{sym}` (define data before functions)")
        });
        self.ldi(dst, base as i64 + off)
    }

    /// Register move (`or dst, src, zero`).
    pub fn mov(&mut self, w: Width, dst: Reg, src: Reg) -> &mut Self {
        self.raw(Inst::mov(w, dst, src))
    }

    /// Generic ALU helper.
    pub fn alu(&mut self, op: Op, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::alu(op, w, dst, a, b))
    }

    /// Addition.
    pub fn add(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Add, w, dst, a, b)
    }

    /// Subtraction.
    pub fn sub(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Sub, w, dst, a, b)
    }

    /// Multiplication.
    pub fn mul(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Mul, w, dst, a, b)
    }

    /// Bitwise AND.
    pub fn and(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::And, w, dst, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Or, w, dst, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Xor, w, dst, a, b)
    }

    /// AND-complement (`dst = a & !b`).
    pub fn andc(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Andc, w, dst, a, b)
    }

    /// Shift left logical.
    pub fn sll(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Sll, w, dst, a, b)
    }

    /// Shift right logical.
    pub fn srl(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Srl, w, dst, a, b)
    }

    /// Shift right arithmetic.
    pub fn sra(&mut self, w: Width, dst: Reg, a: Reg, b: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Sra, w, dst, a, b)
    }

    /// Comparison producing 0/1.
    pub fn cmp(
        &mut self,
        kind: CmpKind,
        w: Width,
        dst: Reg,
        a: Reg,
        b: impl Into<Operand>,
    ) -> &mut Self {
        self.alu(Op::Cmp(kind), w, dst, a, b)
    }

    /// Conditional move.
    pub fn cmov(
        &mut self,
        cond: Cond,
        w: Width,
        dst: Reg,
        test: Reg,
        val: impl Into<Operand>,
    ) -> &mut Self {
        self.raw(Inst::cmov(cond, w, dst, test, val))
    }

    /// Sign extension of the low `w` bits of `val`.
    pub fn sext(&mut self, w: Width, dst: Reg, val: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::extend(Op::Sext, w, dst, val))
    }

    /// Zero extension of the low `w` bits of `val`.
    pub fn zext(&mut self, w: Width, dst: Reg, val: impl Into<Operand>) -> &mut Self {
        self.raw(Inst::extend(Op::Zext, w, dst, val))
    }

    /// Zero all bytes of `src` not selected by `mask` (Alpha `ZAPNOT`).
    pub fn zapnot(&mut self, dst: Reg, src: Reg, mask: u8) -> &mut Self {
        self.alu(Op::Zapnot, Width::D, dst, src, mask as i64)
    }

    /// Extract the `w`-byte field of `src` at byte index `idx`.
    pub fn ext(&mut self, w: Width, dst: Reg, src: Reg, idx: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Ext, w, dst, src, idx)
    }

    /// Clear the `w`-byte field of `src` at byte index `idx`.
    pub fn msk(&mut self, w: Width, dst: Reg, src: Reg, idx: impl Into<Operand>) -> &mut Self {
        self.alu(Op::Msk, w, dst, src, idx)
    }

    /// Sign-extending load of `w` bytes from `disp(base)`.
    pub fn ld(&mut self, w: Width, dst: Reg, base: Reg, disp: i32) -> &mut Self {
        self.raw(Inst::load(w, true, dst, MemRef { base, disp }))
    }

    /// Zero-extending load of `w` bytes from `disp(base)`.
    pub fn ldu(&mut self, w: Width, dst: Reg, base: Reg, disp: i32) -> &mut Self {
        self.raw(Inst::load(w, false, dst, MemRef { base, disp }))
    }

    /// Store the low `w` bytes of `data` to `disp(base)`.
    pub fn st(&mut self, w: Width, data: Reg, base: Reg, disp: i32) -> &mut Self {
        self.raw(Inst::store(w, data, MemRef { base, disp }))
    }

    /// Emit the low `w` bytes of `value` to the output stream.
    pub fn out(&mut self, w: Width, value: Reg) -> &mut Self {
        self.raw(Inst::out(w, value))
    }

    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        let b = self.cur();
        let idx = b.insts.len();
        b.insts.push(Inst::br(u32::MAX));
        b.syms.push((idx, SymTarget::BrLabel(label)));
        self
    }

    fn bc(&mut self, cond: Cond, reg: Reg, label: String) -> &mut Self {
        let b = self.cur();
        let idx = b.insts.len();
        b.insts.push(Inst::bc(cond, reg, u32::MAX, u32::MAX));
        b.syms.push((idx, SymTarget::BcLabel(label)));
        self
    }

    /// Branch to `label` if `reg == 0`; otherwise fall through to the next
    /// declared block.
    pub fn beq(&mut self, reg: Reg, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Eq, reg, label.into())
    }

    /// Branch if `reg != 0`.
    pub fn bne(&mut self, reg: Reg, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Ne, reg, label.into())
    }

    /// Branch if `reg < 0`.
    pub fn blt(&mut self, reg: Reg, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Lt, reg, label.into())
    }

    /// Branch if `reg >= 0`.
    pub fn bge(&mut self, reg: Reg, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Ge, reg, label.into())
    }

    /// Branch if `reg <= 0`.
    pub fn ble(&mut self, reg: Reg, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Le, reg, label.into())
    }

    /// Branch if `reg > 0`.
    pub fn bgt(&mut self, reg: Reg, label: impl Into<String>) -> &mut Self {
        self.bc(Cond::Gt, reg, label.into())
    }

    /// Conditional branch with an explicit fall-through label (instead of
    /// the next declared block).
    pub fn bc_to(
        &mut self,
        cond: Cond,
        reg: Reg,
        taken: impl Into<String>,
        fall: impl Into<String>,
    ) -> &mut Self {
        let (taken, fall) = (taken.into(), fall.into());
        let b = self.cur();
        let idx = b.insts.len();
        b.insts.push(Inst::bc(cond, reg, u32::MAX, u32::MAX));
        b.syms.push((idx, SymTarget::BcLabels(taken, fall)));
        self
    }

    /// The address of data symbol `sym`, if it was defined before this
    /// function builder was created.
    pub fn data_symbol(&self, sym: &str) -> Option<u64> {
        self.data_syms.get(sym).copied()
    }

    /// Call function `name` (resolved when the program is built).
    pub fn jsr(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let b = self.cur();
        let idx = b.insts.len();
        b.insts.push(Inst::jsr(u32::MAX));
        b.syms.push((idx, SymTarget::JsrName(name)));
        self
    }

    /// Return from this function.
    pub fn ret(&mut self) -> &mut Self {
        self.raw(Inst::ret())
    }

    /// Stop the program.
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Inst::halt())
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Inst::nop())
    }
}

/// Builds a whole [`Program`]: define data, then functions, then
/// [`ProgramBuilder::build`].
///
/// The entry point is the function named `main` (or the first function if
/// none is named `main`).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    data: DataSegment,
    func_ids: HashMap<String, FuncId>,
    sigs: Vec<(String, u8)>,
    bodies: Vec<Option<Function>>,
    pending_syms: Vec<Vec<(usize, usize, SymTarget)>>,
}

impl ProgramBuilder {
    /// A fresh builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder {
            data: DataSegment::new(),
            func_ids: HashMap::new(),
            sigs: Vec::new(),
            bodies: Vec::new(),
            pending_syms: Vec::new(),
        }
    }

    /// Define a data symbol with raw bytes; returns its address.
    pub fn data_bytes(&mut self, name: &str, bytes: Vec<u8>) -> u64 {
        self.data.define(name, bytes)
    }

    /// Define a zero-initialized data region.
    pub fn data_zeroed(&mut self, name: &str, len: usize) -> u64 {
        self.data.define_zeroed(name, len)
    }

    /// Define a data region of 64-bit words.
    pub fn data_quads(&mut self, name: &str, words: &[i64]) -> u64 {
        self.data.define_quads(name, words)
    }

    /// Declare a function signature without a body (for forward/mutual
    /// references); the body must be supplied later via
    /// [`ProgramBuilder::function`] + [`ProgramBuilder::finish`].
    pub fn declare(&mut self, name: &str, n_args: u8) -> FuncId {
        if let Some(&id) = self.func_ids.get(name) {
            return id;
        }
        let id = FuncId(self.sigs.len() as u32);
        self.func_ids.insert(name.to_string(), id);
        self.sigs.push((name.to_string(), n_args));
        self.bodies.push(None);
        self.pending_syms.push(Vec::new());
        id
    }

    /// Start building the body of function `name` with `n_args` register
    /// arguments.
    ///
    /// # Panics
    ///
    /// Panics if the function already has a body.
    pub fn function(&mut self, name: &str, n_args: u8) -> FunctionBuilder {
        assert!(n_args <= 6, "at most 6 register arguments");
        let id = self.declare(name, n_args);
        assert!(self.bodies[id.index()].is_none(), "function `{name}` defined twice");
        self.sigs[id.index()].1 = n_args;
        let mut data_syms = HashMap::new();
        for item in self.data.items() {
            data_syms.insert(item.name.clone(), item.addr);
        }
        FunctionBuilder {
            id,
            name: name.to_string(),
            n_args,
            returns_value: true,
            blocks: Vec::new(),
            data_syms,
        }
    }

    /// Accept a finished function body.
    ///
    /// # Panics
    ///
    /// Panics if the builder belongs to a different `ProgramBuilder`
    /// generation (cannot normally happen).
    pub fn finish(&mut self, fb: FunctionBuilder) {
        let mut blocks = Vec::with_capacity(fb.blocks.len());
        let mut syms = Vec::new();
        let mut labels: HashMap<String, u32> = HashMap::new();
        for (bi, pb) in fb.blocks.iter().enumerate() {
            labels.insert(pb.label.clone(), bi as u32);
        }
        for (bi, pb) in fb.blocks.into_iter().enumerate() {
            for (ii, sym) in pb.syms {
                syms.push((bi, ii, sym));
            }
            blocks.push(Block { label: pb.label, insts: pb.insts });
        }
        // Resolve labels now; function calls are resolved in build().
        let mut remaining = Vec::new();
        for (bi, ii, sym) in syms {
            match sym {
                SymTarget::BrLabel(l) | SymTarget::BcLabel(l) if !labels.contains_key(&l) => {
                    // Leave unresolved: build() reports a BuildError.
                    remaining.push((bi, ii, SymTarget::BrLabel(l)));
                }
                SymTarget::BcLabels(t, fl)
                    if !labels.contains_key(&t) || !labels.contains_key(&fl) =>
                {
                    let missing = if labels.contains_key(&t) { fl } else { t };
                    remaining.push((bi, ii, SymTarget::BrLabel(missing)));
                }
                SymTarget::BrLabel(l) => {
                    blocks[bi].insts[ii].target = Target::Block(labels[&l]);
                }
                SymTarget::BcLabel(l) => {
                    let fall = (bi + 1) as u32;
                    blocks[bi].insts[ii].target = Target::CondBlocks { taken: labels[&l], fall };
                }
                SymTarget::BcLabels(t, fl) => {
                    blocks[bi].insts[ii].target =
                        Target::CondBlocks { taken: labels[&t], fall: labels[&fl] };
                }
                SymTarget::JsrName(n) => remaining.push((bi, ii, SymTarget::JsrName(n))),
            }
        }
        let func = Function {
            id: fb.id,
            name: fb.name,
            blocks,
            entry: crate::BlockId(0),
            n_args: fb.n_args,
            returns_value: fb.returns_value,
        };
        self.pending_syms[fb.id.index()] = remaining;
        self.bodies[fb.id.index()] = Some(func);
    }

    /// Finalize: resolve calls, add fall-through branches, verify.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for unresolved labels or calls, missing
    /// terminators, bodiless functions, or verification failures.
    pub fn build(mut self) -> Result<Program, BuildError> {
        let mut funcs = Vec::with_capacity(self.bodies.len());
        for (i, body) in self.bodies.iter_mut().enumerate() {
            let name = self.sigs[i].0.clone();
            let mut f = body.take().ok_or(BuildError::UndefinedFunction { name: name.clone() })?;
            if f.blocks.is_empty() {
                return Err(BuildError::NoBlocks { func: name });
            }
            // Resolve remaining symbolic targets.
            for (bi, ii, sym) in std::mem::take(&mut self.pending_syms[i]) {
                match sym {
                    SymTarget::JsrName(n) => {
                        let callee = self
                            .func_ids
                            .get(&n)
                            .ok_or(BuildError::UnknownFunction { name: n.clone() })?;
                        f.blocks[bi].insts[ii].target = Target::Func(callee.0);
                    }
                    SymTarget::BrLabel(l) | SymTarget::BcLabel(l) | SymTarget::BcLabels(l, _) => {
                        return Err(BuildError::UnknownLabel { func: name, label: l });
                    }
                }
            }
            // Insert fall-through branches and check final terminators.
            let n_blocks = f.blocks.len();
            for bi in 0..n_blocks {
                let has_term = f.blocks[bi].insts.last().is_some_and(|t| t.op.is_terminator());
                if !has_term {
                    if bi + 1 < n_blocks {
                        f.blocks[bi].insts.push(Inst::br(bi as u32 + 1));
                    } else {
                        return Err(BuildError::MissingTerminator { func: name });
                    }
                }
                // A conditional branch whose fall-through points past the
                // last block is malformed.
                if let Some(Inst { target: Target::CondBlocks { fall, .. }, .. }) =
                    f.blocks[bi].insts.last()
                {
                    if *fall as usize >= n_blocks {
                        return Err(BuildError::MissingTerminator { func: name });
                    }
                }
            }
            funcs.push(f);
        }
        let entry = self.func_ids.get("main").copied().unwrap_or(FuncId(0));
        let program = Program { funcs, entry, data: self.data };
        program.verify()?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_isa::Op;

    #[test]
    fn builds_loop_with_fallthrough() {
        let mut pb = ProgramBuilder::new();
        pb.data_quads("tbl", &[1, 2, 3]);
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 0);
        f.la(Reg::T1, "tbl");
        f.block("loop");
        f.ld(Width::D, Reg::T2, Reg::T1, 0);
        f.add(Width::W, Reg::T0, Reg::T0, Reg::T2);
        f.add(Width::D, Reg::T1, Reg::T1, imm(8));
        f.cmp(CmpKind::Lt, Width::D, Reg::T3, Reg::T0, imm(6));
        f.bne(Reg::T3, "loop");
        f.block("exit");
        f.out(Width::B, Reg::T0);
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let main = p.func(p.entry);
        assert_eq!(main.blocks.len(), 3);
        // entry falls through to loop via an inserted br
        assert_eq!(main.blocks[0].insts.last().unwrap().op, Op::Br);
        // bne taken target is the loop block, fall is exit
        match main.blocks[1].insts.last().unwrap().target {
            Target::CondBlocks { taken, fall } => {
                assert_eq!(taken, 1);
                assert_eq!(fall, 2);
            }
            ref t => panic!("unexpected target {t:?}"),
        }
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.br("nowhere");
        f.block("pad");
        f.halt();
        pb.finish(f);
        match pb.build() {
            Err(BuildError::UnknownLabel { label, .. }) => assert_eq!(label, "nowhere"),
            other => panic!("expected UnknownLabel, got {other:?}"),
        }
    }

    #[test]
    fn unknown_function_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.jsr("ghost");
        f.halt();
        pb.finish(f);
        assert!(matches!(pb.build(), Err(BuildError::UnknownFunction { .. })));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 1);
        pb.finish(f);
        assert!(matches!(pb.build(), Err(BuildError::MissingTerminator { .. })));
    }

    #[test]
    fn declared_but_undefined_function_is_an_error() {
        let mut pb = ProgramBuilder::new();
        pb.declare("ghost", 0);
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.halt();
        pb.finish(f);
        assert!(matches!(pb.build(), Err(BuildError::UndefinedFunction { .. })));
    }

    #[test]
    #[should_panic(expected = "after terminator")]
    fn emitting_after_terminator_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.halt();
        f.ldi(Reg::T0, 1);
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn duplicate_label_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("a");
        f.block("a");
    }

    #[test]
    fn mutual_recursion_via_declare() {
        let mut pb = ProgramBuilder::new();
        pb.declare("odd", 1);
        let mut even = pb.function("even", 1);
        even.block("entry");
        even.beq(Reg::A0, "yes");
        even.block("rec");
        even.sub(Width::W, Reg::A0, Reg::A0, imm(1));
        even.jsr("odd");
        even.ret();
        even.block("yes");
        even.ldi(Reg::V0, 1);
        even.ret();
        pb.finish(even);
        let mut odd = pb.function("odd", 1);
        odd.block("entry");
        odd.beq(Reg::A0, "no");
        odd.block("rec");
        odd.sub(Width::W, Reg::A0, Reg::A0, imm(1));
        odd.jsr("even");
        odd.ret();
        odd.block("no");
        odd.ldi(Reg::V0, 0);
        odd.ret();
        pb.finish(odd);
        let mut main = pb.function("main", 0);
        main.block("entry");
        main.ldi(Reg::A0, 4);
        main.jsr("even");
        main.out(Width::B, Reg::V0);
        main.halt();
        pb.finish(main);
        let p = pb.build().unwrap();
        assert_eq!(p.funcs.len(), 3);
        assert_eq!(p.func(p.entry).name, "main");
    }
}
