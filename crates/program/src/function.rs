//! Functions and basic blocks.

use crate::{BlockId, FuncId, InstRef};
use og_isa::{Inst, Op, Target};
use serde::{Deserialize, Serialize};

/// A basic block: straight-line instructions ended by exactly one
/// terminator (`br`, conditional branch, `ret` or `halt`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable label (unique within the function).
    pub label: String,
    /// The instructions, terminator last.
    pub insts: Vec<Inst>,
}

impl Block {
    /// Create an empty block with the given label.
    pub fn new(label: impl Into<String>) -> Block {
        Block { label: label.into(), insts: Vec::new() }
    }

    /// The terminator instruction, if the block is non-empty and ends with
    /// one.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.op.is_terminator())
    }

    /// Successor block ids (empty for `ret`/`halt`).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator()
            .map_or_else(Vec::new, |t| t.successors().into_iter().map(BlockId).collect())
    }
}

/// A function: a list of basic blocks with a designated entry block.
///
/// Arguments arrive in `a0`–`a5` and the result is returned in `v0`,
/// following the Alpha C calling convention described at [`og_isa::Reg`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// This function's id within its program.
    pub id: FuncId,
    /// Name (unique within the program).
    pub name: String,
    /// Basic blocks; `BlockId` indexes into this vector.
    pub blocks: Vec<Block>,
    /// The entry block (always `BlockId(0)` for built programs).
    pub entry: BlockId,
    /// Number of register arguments (0..=6).
    pub n_args: u8,
    /// Does the function produce a value in `v0`?
    pub returns_value: bool,
}

impl Function {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[inline]
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// The instruction at `r` (which must refer to this function).
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    #[inline]
    pub fn inst(&self, r: InstRef) -> &Inst {
        debug_assert_eq!(r.func, self.id);
        &self.block(r.block).insts[r.idx as usize]
    }

    /// Mutable access to the instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    #[inline]
    pub fn inst_mut(&mut self, r: InstRef) -> &mut Inst {
        debug_assert_eq!(r.func, self.id);
        let fid = self.id;
        let _ = fid;
        &mut self.block_mut(r.block).insts[r.idx as usize]
    }

    /// Iterate over all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterate over `(InstRef, &Inst)` for every instruction.
    pub fn insts(&self) -> impl Iterator<Item = (InstRef, &Inst)> {
        let fid = self.id;
        self.blocks.iter().enumerate().flat_map(move |(bi, b)| {
            b.insts
                .iter()
                .enumerate()
                .map(move |(ii, inst)| (InstRef::new(fid, BlockId(bi as u32), ii as u32), inst))
        })
    }

    /// Total number of instructions.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Ids of functions called directly by this function.
    pub fn callees(&self) -> Vec<FuncId> {
        let mut out = Vec::new();
        for (_, i) in self.insts() {
            if i.op == Op::Jsr {
                if let Target::Func(fid) = i.target {
                    if !out.contains(&FuncId(fid)) {
                        out.push(FuncId(fid));
                    }
                }
            }
        }
        out
    }

    /// Append a new block and return its id.
    pub fn push_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_isa::{Cond, Reg, Width};

    fn sample() -> Function {
        let mut f = Function {
            id: FuncId(0),
            name: "f".into(),
            blocks: vec![],
            entry: BlockId(0),
            n_args: 1,
            returns_value: true,
        };
        let mut b0 = Block::new("entry");
        b0.insts.push(Inst::ldi(Reg::T0, 1));
        b0.insts.push(Inst::bc(Cond::Ne, Reg::T0, 1, 2));
        f.push_block(b0);
        let mut b1 = Block::new("then");
        b1.insts.push(Inst::br(2));
        f.push_block(b1);
        let mut b2 = Block::new("exit");
        b2.insts.push(Inst::out(Width::B, Reg::T0));
        b2.insts.push(Inst::ret());
        f.push_block(b2);
        f
    }

    #[test]
    fn successors_from_terminators() {
        let f = sample();
        assert_eq!(f.block(BlockId(0)).successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(f.block(BlockId(1)).successors(), vec![BlockId(2)]);
        assert!(f.block(BlockId(2)).successors().is_empty());
    }

    #[test]
    fn inst_iteration_and_lookup() {
        let f = sample();
        assert_eq!(f.inst_count(), 5);
        let refs: Vec<_> = f.insts().map(|(r, _)| r).collect();
        assert_eq!(refs[0], InstRef::new(FuncId(0), BlockId(0), 0));
        assert_eq!(f.inst(refs[3]).op, og_isa::Op::Out);
    }

    #[test]
    fn terminator_detection() {
        let f = sample();
        assert!(f.block(BlockId(0)).terminator().is_some());
        let empty = Block::new("x");
        assert!(empty.terminator().is_none());
    }

    #[test]
    fn callees_deduplicated() {
        let mut f = sample();
        f.blocks[1].insts.insert(0, Inst::jsr(5));
        f.blocks[1].insts.insert(1, Inst::jsr(5));
        f.blocks[1].insts.insert(2, Inst::jsr(6));
        assert_eq!(f.callees(), vec![FuncId(5), FuncId(6)]);
    }
}
