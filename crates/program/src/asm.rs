//! A textual assembly dialect for OGA-64 programs.
//!
//! The dialect mirrors the [`crate::ProgramBuilder`] API one-to-one:
//!
//! ```text
//! ; comment
//! .data
//! tbl:    .quad 1, 2, 3
//! buf:    .space 64
//! .text
//! .func main, args=0
//! entry:
//!     ldi     t1, @tbl
//!     ldi     t0, 0
//! loop:
//!     ld.d    t2, 0(t1)
//!     add.w   t0, t0, t2
//!     add.d   t1, t1, 8
//!     cmplt.d t3, t1, @tbl+24
//!     bne     t3, loop
//! exit:
//!     out.w   t0
//!     halt
//! .endfunc
//! ```
//!
//! Conditional branches may name an explicit fall-through block as a third
//! operand (`bne t0, taken, fall`); otherwise the next block in textual
//! order is the fall-through.

use crate::builder::BuildError;
use crate::{Program, ProgramBuilder};
use og_isa::{CmpKind, Cond, Op, Operand, Reg, Target, Width};
use std::fmt;

/// An assembly parsing error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError { line, message: message.into() }
}

impl From<(usize, BuildError)> for AsmError {
    fn from((line, e): (usize, BuildError)) -> Self {
        err(line, e.to_string())
    }
}

/// Parse a program from assembly text.
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first syntax or resolution
/// problem, with its line number.
pub fn parse_asm(text: &str) -> Result<Program, AsmError> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    pb: ProgramBuilder,
}

enum Section {
    None,
    Data,
    Text,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = match l.find([';', '#']) {
                    Some(p) => &l[..p],
                    None => l,
                }
                .trim();
                (i + 1, l)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0, pb: ProgramBuilder::new() }
    }

    fn parse(mut self) -> Result<Program, AsmError> {
        let mut section = Section::None;
        while self.pos < self.lines.len() {
            let (ln, line) = self.lines[self.pos];
            if line == ".data" {
                section = Section::Data;
                self.pos += 1;
            } else if line == ".text" {
                section = Section::Text;
                self.pos += 1;
            } else if let Some(rest) = line.strip_prefix(".func") {
                self.parse_func(ln, rest.trim())?;
            } else {
                match section {
                    Section::Data => self.parse_data_line()?,
                    Section::Text | Section::None => {
                        return Err(err(
                            ln,
                            format!("unexpected line outside a function: `{line}`"),
                        ))
                    }
                }
            }
        }
        let last_line = self.lines.last().map_or(0, |(n, _)| *n);
        self.pb.build().map_err(|e| (last_line, e).into())
    }

    fn parse_data_line(&mut self) -> Result<(), AsmError> {
        let (ln, line) = self.lines[self.pos];
        self.pos += 1;
        let (label, rest) = line
            .split_once(':')
            .ok_or_else(|| err(ln, "data line must be `label: .directive ...`"))?;
        let rest = rest.trim();
        if let Some(args) = rest.strip_prefix(".space") {
            let n: usize = args.trim().parse().map_err(|_| err(ln, "bad .space size"))?;
            self.pb.data_zeroed(label.trim(), n);
        } else if let Some(args) = rest.strip_prefix(".quad") {
            let vals = parse_int_list(args).map_err(|m| err(ln, m))?;
            self.pb.data_quads(label.trim(), &vals);
        } else if let Some(args) = rest.strip_prefix(".byte") {
            let vals = parse_int_list(args).map_err(|m| err(ln, m))?;
            let bytes: Result<Vec<u8>, _> = vals
                .iter()
                .map(|&v| u8::try_from(v).map_err(|_| err(ln, "byte value out of range")))
                .collect();
            self.pb.data_bytes(label.trim(), bytes?);
        } else {
            return Err(err(ln, format!("unknown data directive: `{rest}`")));
        }
        Ok(())
    }

    fn parse_func(&mut self, ln: usize, header: &str) -> Result<(), AsmError> {
        // `.func name, args=N [, noret]`
        let mut parts = header.split(',').map(str::trim);
        let name = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| err(ln, "function header must be `.func name, args=N`"))?;
        let mut n_args = 0u8;
        let mut returns = true;
        for p in parts {
            if let Some(v) = p.strip_prefix("args=") {
                n_args = v.parse().map_err(|_| err(ln, "bad args count"))?;
            } else if p == "noret" {
                returns = false;
            } else {
                return Err(err(ln, format!("unknown function attribute `{p}`")));
            }
        }
        self.pos += 1;
        let mut fb = self.pb.function(name, n_args);
        fb.returns_value(returns);
        let mut saw_block = false;
        loop {
            if self.pos >= self.lines.len() {
                return Err(err(ln, format!("function `{name}` missing .endfunc")));
            }
            let (iln, line) = self.lines[self.pos];
            self.pos += 1;
            if line == ".endfunc" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                fb.block(label.trim());
                saw_block = true;
                continue;
            }
            if !saw_block {
                return Err(err(iln, "instruction before first block label"));
            }
            parse_inst(&mut fb, iln, line)?;
        }
        self.pb.finish(fb);
        Ok(())
    }
}

fn parse_int(s: &str) -> Result<i64, String> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        body.parse::<u64>().map(|v| v as i64)
    }
    .map_err(|_| format!("bad integer `{s}`"))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_int_list(s: &str) -> Result<Vec<i64>, String> {
    s.split(',').map(parse_int).collect()
}

fn parse_reg(s: &str) -> Result<Reg, String> {
    Reg::parse(s.trim()).ok_or_else(|| format!("unknown register `{s}`"))
}

fn parse_operand(fb: &crate::FunctionBuilder, s: &str) -> Result<Operand, String> {
    let s = s.trim();
    if let Some(r) = Reg::parse(s) {
        return Ok(Operand::Reg(r));
    }
    if let Some(sym) = s.strip_prefix('@') {
        let (name, off) = match sym.split_once('+') {
            Some((n, o)) => (n, parse_int(o)?),
            None => (sym, 0),
        };
        let addr = fb.data_symbol(name).ok_or_else(|| format!("unknown data symbol `{name}`"))?;
        return Ok(Operand::Imm(addr as i64 + off));
    }
    Ok(Operand::Imm(parse_int(s)?))
}

fn split_mnemonic(m: &str) -> (&str, Option<Width>) {
    match m.rsplit_once('.') {
        Some((base, suf)) => match Width::from_suffix(suf) {
            Some(w) => (base, Some(w)),
            None => (m, None),
        },
        None => (m, None),
    }
}

fn parse_mem(s: &str) -> Result<(i32, Reg), String> {
    // `disp(base)`
    let open = s.find('(').ok_or_else(|| format!("expected disp(base), got `{s}`"))?;
    let close = s.rfind(')').ok_or_else(|| format!("expected disp(base), got `{s}`"))?;
    let disp_str = s[..open].trim();
    let disp = if disp_str.is_empty() { 0 } else { parse_int(disp_str)? as i32 };
    let base = parse_reg(&s[open + 1..close])?;
    Ok((disp, base))
}

fn parse_inst(fb: &mut crate::FunctionBuilder, ln: usize, line: &str) -> Result<(), AsmError> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let (base, width) = split_mnemonic(mnemonic);
    let w = width.unwrap_or(Width::D);
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let e = |m: String| err(ln, m);
    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(ln, format!("`{base}` expects {n} operands, got {}", ops.len())))
        }
    };

    let alu3 = |fb: &mut crate::FunctionBuilder, op: Op, ops: &[&str]| -> Result<(), AsmError> {
        let dst = parse_reg(ops[0]).map_err(e)?;
        let a = parse_reg(ops[1]).map_err(e)?;
        let b = parse_operand(fb, ops[2]).map_err(e)?;
        fb.alu(op, w, dst, a, b);
        Ok(())
    };

    match base {
        "ldi" => {
            need(2)?;
            let dst = parse_reg(ops[0]).map_err(e)?;
            match parse_operand(fb, ops[1]).map_err(e)? {
                Operand::Imm(v) => {
                    fb.ldi(dst, v);
                }
                _ => return Err(err(ln, "ldi takes an immediate or @symbol")),
            }
        }
        "mov" => {
            need(2)?;
            let dst = parse_reg(ops[0]).map_err(e)?;
            let src = parse_reg(ops[1]).map_err(e)?;
            fb.mov(w, dst, src);
        }
        "add" | "sub" | "mul" | "and" | "or" | "xor" | "andc" | "sll" | "srl" | "sra" => {
            need(3)?;
            let op = match base {
                "add" => Op::Add,
                "sub" => Op::Sub,
                "mul" => Op::Mul,
                "and" => Op::And,
                "or" => Op::Or,
                "xor" => Op::Xor,
                "andc" => Op::Andc,
                "sll" => Op::Sll,
                "srl" => Op::Srl,
                _ => Op::Sra,
            };
            alu3(fb, op, &ops)?;
        }
        _ if base.starts_with("cmp") => {
            need(3)?;
            let kind = CmpKind::parse(&base[3..])
                .ok_or_else(|| err(ln, format!("unknown comparison `{base}`")))?;
            alu3(fb, Op::Cmp(kind), &ops)?;
        }
        _ if base.starts_with("cmov") => {
            need(3)?;
            let cond = Cond::parse(&base[4..])
                .ok_or_else(|| err(ln, format!("unknown cmov condition `{base}`")))?;
            let dst = parse_reg(ops[0]).map_err(e)?;
            let test = parse_reg(ops[1]).map_err(e)?;
            let val = parse_operand(fb, ops[2]).map_err(e)?;
            fb.cmov(cond, w, dst, test, val);
        }
        "sext" | "zext" => {
            need(2)?;
            let dst = parse_reg(ops[0]).map_err(e)?;
            let val = parse_operand(fb, ops[1]).map_err(e)?;
            if base == "sext" {
                fb.sext(w, dst, val);
            } else {
                fb.zext(w, dst, val);
            }
        }
        "zapnot" => {
            need(3)?;
            let dst = parse_reg(ops[0]).map_err(e)?;
            let src = parse_reg(ops[1]).map_err(e)?;
            let mask = parse_int(ops[2]).map_err(e)?;
            let mask = u8::try_from(mask).map_err(|_| err(ln, "zapnot mask out of range"))?;
            fb.zapnot(dst, src, mask);
        }
        "ext" | "msk" => {
            need(3)?;
            let op = if base == "ext" { Op::Ext } else { Op::Msk };
            alu3(fb, op, &ops)?;
        }
        "ld" | "ldu" => {
            need(2)?;
            let dst = parse_reg(ops[0]).map_err(e)?;
            let (disp, baser) = parse_mem(ops[1]).map_err(e)?;
            if base == "ld" {
                fb.ld(w, dst, baser, disp);
            } else {
                fb.ldu(w, dst, baser, disp);
            }
        }
        "st" => {
            need(2)?;
            let data = parse_reg(ops[0]).map_err(e)?;
            let (disp, baser) = parse_mem(ops[1]).map_err(e)?;
            fb.st(w, data, baser, disp);
        }
        "br" => {
            need(1)?;
            fb.br(ops[0]);
        }
        "beq" | "bne" | "blt" | "bge" | "ble" | "bgt" => {
            if ops.len() != 2 && ops.len() != 3 {
                return Err(err(ln, format!("`{base}` expects 2 or 3 operands")));
            }
            let reg = parse_reg(ops[0]).map_err(e)?;
            let cond = Cond::parse(&base[1..]).expect("checked prefix");
            if ops.len() == 3 {
                fb.bc_to(cond, reg, ops[1], ops[2]);
            } else {
                match cond {
                    Cond::Eq => fb.beq(reg, ops[1]),
                    Cond::Ne => fb.bne(reg, ops[1]),
                    Cond::Lt => fb.blt(reg, ops[1]),
                    Cond::Ge => fb.bge(reg, ops[1]),
                    Cond::Le => fb.ble(reg, ops[1]),
                    Cond::Gt => fb.bgt(reg, ops[1]),
                };
            }
        }
        "jsr" => {
            need(1)?;
            fb.jsr(ops[0]);
        }
        "ret" => {
            need(0)?;
            fb.ret();
        }
        "halt" => {
            need(0)?;
            fb.halt();
        }
        "nop" => {
            need(0)?;
            fb.nop();
        }
        "out" => {
            need(1)?;
            let r = parse_reg(ops[0]).map_err(e)?;
            fb.out(w, r);
        }
        _ => return Err(err(ln, format!("unknown mnemonic `{mnemonic}`"))),
    }
    Ok(())
}

/// Render a program back to assembly text (suitable for re-parsing; data
/// symbol names are preserved, instruction operands print numerically).
pub fn program_to_asm(p: &Program) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    if !p.data.items().is_empty() {
        s.push_str(".data\n");
        for item in p.data.items() {
            let _ = writeln!(
                s,
                "{}: .byte {}",
                item.name,
                item.bytes.iter().map(u8::to_string).collect::<Vec<_>>().join(", ")
            );
        }
    }
    s.push_str(".text\n");
    for f in &p.funcs {
        let _ = writeln!(
            s,
            ".func {}, args={}{}",
            f.name,
            f.n_args,
            if f.returns_value { "" } else { ", noret" }
        );
        for (bi, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(s, "{}:", b.label);
            for inst in &b.insts {
                let text = match inst.op {
                    Op::Br => format!("br {}", f.blocks[block_idx(inst, 0)].label),
                    Op::Bc(c) => {
                        if let Target::CondBlocks { taken, fall } = inst.target {
                            let m = Op::Bc(c).mnemonic();
                            if fall as usize == bi + 1 {
                                format!(
                                    "{m} {}, {}",
                                    inst.src1.unwrap(),
                                    f.blocks[taken as usize].label
                                )
                            } else {
                                format!(
                                    "{m} {}, {}, {}",
                                    inst.src1.unwrap(),
                                    f.blocks[taken as usize].label,
                                    f.blocks[fall as usize].label
                                )
                            }
                        } else {
                            inst.to_string()
                        }
                    }
                    Op::Jsr => {
                        if let Target::Func(fid) = inst.target {
                            format!("jsr {}", p.funcs[fid as usize].name)
                        } else {
                            inst.to_string()
                        }
                    }
                    _ => inst.to_string(),
                };
                let _ = writeln!(s, "    {text}");
            }
        }
        s.push_str(".endfunc\n");
    }
    s
}

fn block_idx(inst: &og_isa::Inst, _which: usize) -> usize {
    match inst.target {
        Target::Block(b) => b as usize,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM_LOOP: &str = r"
; sum three table entries
.data
tbl:    .quad 5, 6, 7
.text
.func main, args=0
entry:
    ldi     t1, @tbl
    ldi     t0, 0
    ldi     t4, 0
loop:
    ld.d    t2, 0(t1)
    add.w   t0, t0, t2
    add.d   t1, t1, 8
    add.w   t4, t4, 1
    cmplt.d t3, t4, 3
    bne     t3, loop
exit:
    out.w   t0
    halt
.endfunc
";

    #[test]
    fn parses_a_loop() {
        let p = parse_asm(SUM_LOOP).unwrap();
        let main = p.func(p.entry);
        assert_eq!(main.blocks.len(), 3);
        assert_eq!(main.blocks[1].label, "loop");
        assert_eq!(p.data.address_of("tbl"), Some(crate::GLOBAL_BASE));
    }

    #[test]
    fn roundtrips_through_text() {
        let p = parse_asm(SUM_LOOP).unwrap();
        let text = program_to_asm(&p);
        let p2 = parse_asm(&text).unwrap();
        assert_eq!(p.funcs.len(), p2.funcs.len());
        let f1 = p.func(p.entry);
        let f2 = p2.func(p2.entry);
        assert_eq!(f1.inst_count(), f2.inst_count());
        for ((_, a), (_, b)) in f1.insts().zip(f2.insts()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reports_unknown_mnemonic_with_line() {
        let text = ".text\n.func main, args=0\nentry:\n    frob t0, t1, t2\n    halt\n.endfunc\n";
        let e = parse_asm(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frob"));
    }

    #[test]
    fn reports_unknown_register() {
        let text = ".text\n.func main, args=0\nentry:\n    add.w q9, t0, t1\n    halt\n.endfunc\n";
        let e = parse_asm(text).unwrap_err();
        assert!(e.message.contains("q9"));
    }

    #[test]
    fn explicit_fallthrough_branches() {
        let text = r"
.text
.func main, args=0
entry:
    ldi t0, 1
    bne t0, b, a
a:
    halt
b:
    halt
.endfunc
";
        let p = parse_asm(text).unwrap();
        let f = p.func(p.entry);
        match f.blocks[0].insts.last().unwrap().target {
            Target::CondBlocks { taken, fall } => {
                assert_eq!(f.blocks[taken as usize].label, "b");
                assert_eq!(f.blocks[fall as usize].label, "a");
            }
            _ => panic!("expected cond targets"),
        }
    }

    #[test]
    fn hex_and_negative_immediates() {
        let text = ".text\n.func main, args=0\nentry:\n    ldi t0, 0xFF\n    ldi t1, -3\n    halt\n.endfunc\n";
        let p = parse_asm(text).unwrap();
        let f = p.func(p.entry);
        assert_eq!(f.blocks[0].insts[0].src2.imm(), Some(255));
        assert_eq!(f.blocks[0].insts[1].src2.imm(), Some(-3));
    }

    #[test]
    fn calls_between_functions() {
        let text = r"
.text
.func helper, args=1
entry:
    add.w v0, a0, 1
    ret
.endfunc
.func main, args=0
entry:
    ldi a0, 4
    jsr helper
    out.b v0
    halt
.endfunc
";
        let p = parse_asm(text).unwrap();
        assert_eq!(p.funcs.len(), 2);
        assert_eq!(p.func(p.entry).name, "main");
    }
}
