//! Address layout: assigns every instruction a nominal program-counter
//! address so the timing model can drive instruction caches and branch
//! predictors.

use crate::{BlockId, FuncId, InstRef, Program};
use serde::{Deserialize, Serialize};

/// Nominal instruction size in bytes (fixed-size fetch slots, like Alpha's
/// 4-byte words scaled to OGA-64's 8-byte encoding words).
pub const INST_BYTES: u64 = 8;

/// Base address of the text segment.
pub const TEXT_BASE: u64 = 0x0040_0000;

/// The computed address layout of a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// `block_addr[f][b]` = address of the first instruction of block `b`
    /// of function `f`.
    block_addr: Vec<Vec<u64>>,
    /// `func_base[f]` = address of function `f`'s entry block.
    func_base: Vec<u64>,
    /// `block_base[f]` = dense index of function `f`'s first block in
    /// func-major, block-major enumeration order (see
    /// [`Layout::block_index`]).
    block_base: Vec<usize>,
    /// Total number of basic blocks.
    num_blocks: usize,
    /// Total text size in bytes.
    text_size: u64,
}

impl Layout {
    /// Compute the layout of `program`: functions laid out in id order,
    /// blocks in block-id order, [`INST_BYTES`] per instruction.
    pub fn compute(program: &Program) -> Layout {
        let mut addr = TEXT_BASE;
        let mut block_addr = Vec::with_capacity(program.funcs.len());
        let mut func_base = Vec::with_capacity(program.funcs.len());
        let mut block_base = Vec::with_capacity(program.funcs.len());
        let mut num_blocks = 0usize;
        for f in &program.funcs {
            let mut blocks = Vec::with_capacity(f.blocks.len());
            func_base.push(addr); // the entry is always block 0
            block_base.push(num_blocks);
            num_blocks += f.blocks.len();
            for b in &f.blocks {
                blocks.push(addr);
                addr += b.insts.len() as u64 * INST_BYTES;
            }
            block_addr.push(blocks);
        }
        Layout { block_addr, func_base, block_base, num_blocks, text_size: addr - TEXT_BASE }
    }

    /// Address of the first instruction of a block.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    #[inline]
    pub fn block_addr(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_addr[f.index()][b.index()]
    }

    /// Address of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    #[inline]
    pub fn addr_of(&self, r: InstRef) -> u64 {
        self.block_addr(r.func, r.block) + r.idx as u64 * INST_BYTES
    }

    /// Entry address of a function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func_base(&self, f: FuncId) -> u64 {
        self.func_base[f.index()]
    }

    /// Total text-segment size in bytes.
    pub fn text_size(&self) -> u64 {
        self.text_size
    }

    /// Dense index of a block in func-major, block-major enumeration
    /// order — the same order [`Layout::compute`] assigns addresses in.
    /// Lets consumers (the VM's pre-decoded execution engine) keep
    /// per-block data in a plain `Vec` indexed by this instead of a
    /// `(FuncId, BlockId)`-keyed map.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    #[inline]
    pub fn block_index(&self, f: FuncId, b: BlockId) -> usize {
        assert!(b.index() < self.block_addr[f.index()].len(), "block {b} out of range");
        self.block_base[f.index()] + b.index()
    }

    /// Total number of basic blocks (the exclusive upper bound of
    /// [`Layout::block_index`]).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{Reg, Width};

    #[test]
    fn addresses_are_sequential() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 1);
        f.add(Width::D, Reg::T0, Reg::T0, imm(1));
        f.br("next");
        f.block("next");
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let l = p.layout();
        let e = InstRef::new(p.entry, BlockId(0), 0);
        assert_eq!(l.addr_of(e), TEXT_BASE);
        assert_eq!(l.addr_of(InstRef::new(p.entry, BlockId(0), 2)), TEXT_BASE + 16);
        assert_eq!(l.block_addr(p.entry, BlockId(1)), TEXT_BASE + 24);
        assert_eq!(l.text_size(), 32);
    }

    #[test]
    fn block_indices_are_dense_across_functions() {
        let mut pb = ProgramBuilder::new();
        let mut callee = pb.function("f", 0);
        callee.block("entry");
        callee.ret();
        callee.block("other");
        callee.ret();
        pb.finish(callee);
        let mut main = pb.function("main", 0);
        main.block("entry");
        main.halt();
        pb.finish(main);
        let p = pb.build().unwrap();
        let l = p.layout();
        assert_eq!(l.num_blocks(), 3);
        let mut seen = Vec::new();
        for f in &p.funcs {
            for b in 0..f.blocks.len() as u32 {
                seen.push(l.block_index(f.id, BlockId(b)));
            }
        }
        assert_eq!(seen, vec![0, 1, 2], "func-major, block-major, no gaps");
    }
}
