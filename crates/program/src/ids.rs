//! Typed identifiers for functions, blocks and instructions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a function within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Identifies a basic block within a [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl FuncId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".b{}", self.0)
    }
}

/// A static instruction location: function, block, and index within the
/// block. This is the identity the profiler, the specializer and the
/// dynamic statistics all key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstRef {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub idx: u32,
}

impl InstRef {
    /// Construct an instruction reference.
    pub fn new(func: FuncId, block: BlockId, idx: u32) -> InstRef {
        InstRef { func, block, idx }
    }
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}#{}", self.func, self.block, self.idx)
    }
}

/// A static basic-block location: function and block, with no instruction
/// index. Block-level diagnostics (an empty block, a block missing its
/// terminator's successor, …) carry this instead of an [`InstRef`] whose
/// `idx` would be meaningless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockRef {
    /// Containing function.
    pub func: FuncId,
    /// The block.
    pub block: BlockId,
}

impl BlockRef {
    /// Construct a block reference.
    pub fn new(func: FuncId, block: BlockId) -> BlockRef {
        BlockRef { func, block }
    }
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.func, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let r = InstRef::new(FuncId(1), BlockId(2), 3);
        assert_eq!(r.to_string(), "@f1.b2#3");
        assert_eq!(FuncId(0).to_string(), "@f0");
        assert_eq!(BlockId(9).to_string(), ".b9");
        assert_eq!(BlockRef::new(FuncId(1), BlockId(2)).to_string(), "@f1.b2");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = InstRef::new(FuncId(0), BlockId(1), 5);
        let b = InstRef::new(FuncId(0), BlockId(2), 0);
        assert!(a < b);
    }
}
