//! Reaching definitions, the def-use web, and liveness.
//!
//! These analyses are the expanded use-def machinery the paper adds to
//! Alto ("expanding the use-def algorithm to allow for inter-basic-block
//! and inter-procedural, forward and backward traversals", §4.1): the
//! def-use web spans basic blocks, and call sites are modelled through the
//! callee's [`crate::WriteSummaries`] — a call *defines* the registers the
//! callee may write, *uses* the registers the callee may read before
//! writing plus every may-write that is not a must-write (a conditional
//! write passes the caller's value through, so that value is observed),
//! and for liveness *kills* only the must-writes.

use crate::{BitSet, BlockId, Cfg, FuncId, Function, InstRef, Program, WriteSummaries};
use og_isa::{Op, Reg, Target};
use std::collections::HashMap;

/// Identifies one definition site in a function's def-use web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DefId(pub u32);

impl DefId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a definition occurs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefSite {
    /// The register's value at function entry (parameters, callee-saved
    /// state, or simply "unknown at entry").
    Entry,
    /// A definition by the instruction at the given location. For `jsr`
    /// instructions this means "the call may write this register".
    Inst(InstRef),
}

/// The def-use web of one function.
#[derive(Debug, Clone)]
pub struct DefUse {
    sites: Vec<(DefSite, Reg)>,
    entry_defs: [DefId; 32],
    defs_at: HashMap<InstRef, Vec<DefId>>,
    use_def: HashMap<(InstRef, Reg), Vec<DefId>>,
    def_use: Vec<Vec<(InstRef, Reg)>>,
    exit_defs: Vec<DefId>,
}

impl DefUse {
    /// Build the def-use web for `f` within `p`.
    ///
    /// Call sites use `summaries` to determine which registers they define
    /// (the callee's may-writes) and which they use (the callee's
    /// read-before-write set, arguments included, plus may-writes that are
    /// not must-writes — those definitions flow *through* the callee on the
    /// paths that skip the write, so the caller's def is observed).
    pub fn build(_p: &Program, f: &Function, cfg: &Cfg, summaries: &WriteSummaries) -> DefUse {
        // ---- enumerate definition sites -------------------------------
        let mut sites: Vec<(DefSite, Reg)> = Vec::new();
        let mut entry_defs = [DefId(0); 32];
        for r in Reg::all() {
            entry_defs[r.index() as usize] = DefId(sites.len() as u32);
            sites.push((DefSite::Entry, r));
        }
        let mut defs_at: HashMap<InstRef, Vec<DefId>> = HashMap::new();
        for (iref, inst) in f.insts() {
            let mut ids = Vec::new();
            if inst.op == Op::Jsr {
                if let Target::Func(callee) = inst.target {
                    for r in summaries.written_regs(FuncId(callee)) {
                        ids.push(DefId(sites.len() as u32));
                        sites.push((DefSite::Inst(iref), r));
                    }
                }
            } else if let Some(d) = inst.def() {
                ids.push(DefId(sites.len() as u32));
                sites.push((DefSite::Inst(iref), d));
            }
            if !ids.is_empty() {
                defs_at.insert(iref, ids);
            }
        }
        let n_defs = sites.len();
        // Defs grouped by register, for kill sets.
        let mut defs_of_reg: Vec<Vec<DefId>> = vec![Vec::new(); 32];
        for (i, (_, r)) in sites.iter().enumerate() {
            defs_of_reg[r.index() as usize].push(DefId(i as u32));
        }
        // ---- per-block GEN/KILL ---------------------------------------
        let n_blocks = f.blocks.len();
        let mut gen = vec![BitSet::new(n_defs); n_blocks];
        let mut kill = vec![BitSet::new(n_defs); n_blocks];
        for b in f.block_ids() {
            let bi = b.index();
            for (ii, _inst) in f.block(b).insts.iter().enumerate() {
                let iref = InstRef::new(f.id, b, ii as u32);
                if let Some(ids) = defs_at.get(&iref) {
                    for &d in ids {
                        let reg = sites[d.index()].1;
                        for &other in &defs_of_reg[reg.index() as usize] {
                            kill[bi].insert(other.index());
                            gen[bi].remove(other.index());
                        }
                        gen[bi].insert(d.index());
                        kill[bi].remove(d.index());
                    }
                }
            }
        }
        // ---- reaching definitions fixpoint ----------------------------
        let mut inb = vec![BitSet::new(n_defs); n_blocks];
        let mut outb = vec![BitSet::new(n_defs); n_blocks];
        for r in Reg::all() {
            inb[f.entry.index()].insert(entry_defs[r.index() as usize].index());
        }
        {
            let bi = f.entry.index();
            let mut o = inb[bi].clone();
            o.transfer(&gen[bi], &kill[bi]);
            outb[bi] = o;
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                let bi = b.index();
                let mut newin = if b == f.entry { inb[bi].clone() } else { BitSet::new(n_defs) };
                for &p in cfg.preds(b) {
                    newin.union_with(&outb[p.index()]);
                }
                let mut newout = newin.clone();
                newout.transfer(&gen[bi], &kill[bi]);
                if newout != outb[bi] || newin != inb[bi] {
                    inb[bi] = newin;
                    outb[bi] = newout;
                    changed = true;
                }
            }
        }
        // ---- link uses to reaching defs -------------------------------
        let mut use_def: HashMap<(InstRef, Reg), Vec<DefId>> = HashMap::new();
        let mut def_use: Vec<Vec<(InstRef, Reg)>> = vec![Vec::new(); n_defs];
        let mut exit_defs: Vec<DefId> = Vec::new();
        for b in f.block_ids() {
            if !cfg.is_reachable(b) {
                continue;
            }
            // Current reaching def(s) per register within the block.
            let mut current: Vec<Vec<DefId>> = vec![Vec::new(); 32];
            for d in inb[b.index()].iter() {
                let reg = sites[d].1;
                current[reg.index() as usize].push(DefId(d as u32));
            }
            for (ii, inst) in f.block(b).insts.iter().enumerate() {
                let iref = InstRef::new(f.id, b, ii as u32);
                // Uses: instruction operands plus what the call observes —
                // the callee's reads and any conditionally-written register
                // (the caller's value survives the paths that skip the
                // write, so narrowing or killing its def is unsound).
                let mut used: Vec<Reg> = inst.uses().into_iter().collect();
                if inst.op == Op::Jsr {
                    if let Target::Func(callee) = inst.target {
                        let callee = FuncId(callee);
                        let observed = summaries.read_mask(callee)
                            | (summaries.mask(callee) & !summaries.must_mask(callee));
                        used.extend(Reg::all().filter(|r| observed & (1 << r.index()) != 0));
                    }
                }
                for r in used {
                    if r.is_zero() {
                        continue;
                    }
                    let defs = current[r.index() as usize].clone();
                    for &d in &defs {
                        def_use[d.index()].push((iref, r));
                    }
                    use_def.insert((iref, r), defs);
                }
                if let Some(ids) = defs_at.get(&iref) {
                    for &d in ids {
                        let reg = sites[d.index()].1;
                        current[reg.index() as usize].clear();
                        current[reg.index() as usize].push(d);
                    }
                }
            }
            // Defs visible to the caller after a `ret` (any register may be
            // read by the continuation, since registers are global state).
            if f.block(b).terminator().map(|t| t.op) == Some(Op::Ret) {
                for regs in &current {
                    for &d in regs {
                        if !exit_defs.contains(&d) {
                            exit_defs.push(d);
                        }
                    }
                }
            }
        }
        DefUse { sites, entry_defs, defs_at, use_def, def_use, exit_defs }
    }

    /// Definitions whose values may be observed by the caller after a
    /// `ret` (the function's register state at exit).
    pub fn exit_defs(&self) -> &[DefId] {
        &self.exit_defs
    }

    /// The site and register of a definition.
    pub fn site(&self, d: DefId) -> (DefSite, Reg) {
        self.sites[d.index()]
    }

    /// The definition representing register `r`'s value at function entry.
    pub fn entry_def(&self, r: Reg) -> DefId {
        self.entry_defs[r.index() as usize]
    }

    /// Definitions created by the instruction at `r` (empty for non-defining
    /// instructions; multiple for calls).
    pub fn defs_at(&self, r: InstRef) -> &[DefId] {
        self.defs_at.get(&r).map_or(&[], |v| v)
    }

    /// The definitions reaching the use of `reg` at `at` (empty if the
    /// instruction does not use `reg` or the block is unreachable).
    pub fn reaching(&self, at: InstRef, reg: Reg) -> &[DefId] {
        self.use_def.get(&(at, reg)).map_or(&[], |v| v)
    }

    /// All uses reached by definition `d`.
    pub fn uses_of(&self, d: DefId) -> &[(InstRef, Reg)] {
        &self.def_use[d.index()]
    }

    /// Number of definition sites (entry defs included).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Always false: there are at least the 32 entry defs.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Per-block register liveness (architectural registers as a 32-bit mask).
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<u32>,
    live_out: Vec<u32>,
}

/// Registers conservatively considered live at `ret`: the return value,
/// stack/global/frame pointers and callee-saved registers.
fn ret_live_mask(returns_value: bool) -> u32 {
    let mut m = 0u32;
    for r in Reg::CALLEE_SAVED {
        m |= 1 << r.index();
    }
    if returns_value {
        m |= 1 << Reg::V0.index();
    }
    m
}

impl Liveness {
    /// Compute liveness for `f` (calls kill the callee's must-write mask
    /// and use its read mask, both from `summaries`).
    pub fn compute(p: &Program, f: &Function, cfg: &Cfg, summaries: &WriteSummaries) -> Liveness {
        let n = f.blocks.len();
        let mut live_in = vec![0u32; n];
        let mut live_out = vec![0u32; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo().iter().rev() {
                let bi = b.index();
                let mut out = 0u32;
                let term = f.block(b).terminator();
                match term.map(|t| t.op) {
                    Some(Op::Ret) => out = ret_live_mask(f.returns_value),
                    Some(Op::Halt) => out = 0,
                    _ => {
                        for &s in cfg.succs(b) {
                            out |= live_in[s.index()];
                        }
                    }
                }
                let mut live = out;
                for inst in f.block(b).insts.iter().rev() {
                    live = Self::transfer(p, summaries, inst, live);
                }
                if out != live_out[bi] || live != live_in[bi] {
                    live_out[bi] = out;
                    live_in[bi] = live;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// One backward liveness step across a single instruction.
    pub fn transfer(
        _p: &Program,
        summaries: &WriteSummaries,
        inst: &og_isa::Inst,
        mut live: u32,
    ) -> u32 {
        if inst.op == Op::Jsr {
            if let Target::Func(callee) = inst.target {
                let callee = FuncId(callee);
                // The call overwrites only what the callee writes on
                // *every* returning path; a may-write can pass the
                // caller's value through, so it must not kill liveness...
                live &= !summaries.must_mask(callee);
                // ...and uses whatever the callee may read before
                // writing (declared arguments included).
                live |= summaries.read_mask(callee);
                return live;
            }
        }
        if let Some(d) = inst.def() {
            live &= !(1 << d.index());
        }
        for r in inst.uses() {
            if !r.is_zero() {
                live |= 1 << r.index();
            }
        }
        live
    }

    /// Live registers at entry to `b`.
    pub fn live_in(&self, b: BlockId) -> u32 {
        self.live_in[b.index()]
    }

    /// Live registers at exit of `b`.
    pub fn live_out(&self, b: BlockId) -> u32 {
        self.live_out[b.index()]
    }

    /// Is `r` live at entry to `b`?
    pub fn is_live_in(&self, b: BlockId, r: Reg) -> bool {
        self.live_in[b.index()] & (1 << r.index()) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{CmpKind, Width};

    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 1); // def A
        f.bne(Reg::T0, "left");
        f.block("right");
        f.ldi(Reg::T1, 2); // def B
        f.br("join");
        f.block("left");
        f.ldi(Reg::T1, 3); // def C
        f.block("join");
        f.add(Width::D, Reg::T2, Reg::T1, Reg::T0); // uses T1 (B or C), T0 (A)
        f.out(Width::B, Reg::T2);
        f.halt();
        pb.finish(f);
        pb.build().unwrap()
    }

    #[test]
    fn merge_points_see_both_defs() {
        let p = diamond();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        let join_add = InstRef::new(f.id, BlockId(3), 0);
        let t1_defs = du.reaching(join_add, Reg::T1);
        assert_eq!(t1_defs.len(), 2, "T1 defined on both arms");
        for &d in t1_defs {
            match du.site(d).0 {
                DefSite::Inst(r) => assert!(r.block == BlockId(1) || r.block == BlockId(2)),
                DefSite::Entry => panic!("unexpected entry def"),
            }
        }
        let t0_defs = du.reaching(join_add, Reg::T0);
        assert_eq!(t0_defs.len(), 1);
    }

    #[test]
    fn entry_defs_reach_unwritten_uses() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 1);
        f.block("entry");
        f.add(Width::D, Reg::T0, Reg::A0, imm(1));
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        let use_site = InstRef::new(f.id, BlockId(0), 0);
        let defs = du.reaching(use_site, Reg::A0);
        assert_eq!(defs.len(), 1);
        assert_eq!(du.site(defs[0]).0, DefSite::Entry);
        assert_eq!(du.entry_def(Reg::A0), defs[0]);
    }

    #[test]
    fn def_use_is_inverse_of_use_def() {
        let p = diamond();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        for (iref, inst) in f.insts() {
            for r in inst.uses() {
                if r.is_zero() {
                    continue;
                }
                for &d in du.reaching(iref, r) {
                    assert!(du.uses_of(d).contains(&(iref, r)));
                }
            }
        }
    }

    #[test]
    fn calls_define_summary_registers() {
        let mut pb = ProgramBuilder::new();
        pb.declare("clobber", 0);
        let mut c = pb.function("clobber", 0);
        c.block("entry");
        c.ldi(Reg::T3, 5);
        c.ret();
        pb.finish(c);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::T3, 1);
        m.jsr("clobber");
        m.add(Width::D, Reg::T4, Reg::T3, imm(0)); // uses post-call T3
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let f = p.func_by_name("main").unwrap();
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        let use_site = InstRef::new(f.id, BlockId(0), 2);
        let defs = du.reaching(use_site, Reg::T3);
        assert_eq!(defs.len(), 1, "call def must kill the earlier ldi");
        match du.site(defs[0]).0 {
            DefSite::Inst(r) => assert_eq!(r.idx, 1, "reaching def is the jsr"),
            DefSite::Entry => panic!("unexpected entry def"),
        }
    }

    #[test]
    fn loop_uses_see_loop_carried_defs() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 0);
        f.block("loop");
        f.add(Width::D, Reg::T0, Reg::T0, imm(1)); // uses T0: entry ldi + itself
        f.cmp(CmpKind::Lt, Width::D, Reg::T1, Reg::T0, imm(10));
        f.bne(Reg::T1, "loop");
        f.block("exit");
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        let add = InstRef::new(f.id, BlockId(1), 0);
        let defs = du.reaching(add, Reg::T0);
        assert_eq!(defs.len(), 2, "initial def and loop-carried def");
    }

    /// The interprocedural hole the coverage-guided fuzzer found: a callee
    /// whose only write of a register is a `cmov` passes the caller's
    /// value through on the not-taken path, so the call must *use* (not
    /// just redefine) that register, and liveness must not treat the call
    /// as a kill. Before the fix, the caller's def had no recorded use →
    /// width demand stayed minimal → VRP narrowed it → miscompile
    /// (`shrunk-seed-454690-506`: `or.d t4` narrowed to a byte across a
    /// `jsr` into `cmovgt.h t4, ...`).
    #[test]
    fn conditional_callee_writes_keep_caller_defs_observable() {
        let mut pb = ProgramBuilder::new();
        pb.declare("mixer", 0);
        let mut c = pb.function("mixer", 0);
        c.block("entry");
        c.cmov(og_isa::Cond::Gt, Width::H, Reg::T4, Reg::T3, Reg::T0);
        c.ret();
        pb.finish(c);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::T4, 0x1234); // the def the callee may pass through
        m.jsr("mixer");
        m.out(Width::D, Reg::T4);
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let f = p.func_by_name("main").unwrap();
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        let ldi = InstRef::new(f.id, BlockId(0), 0);
        let jsr = InstRef::new(f.id, BlockId(0), 1);
        // The jsr records a use of T4 reaching back to the ldi (and to the
        // cmov sources T3/T0 at function entry).
        let t4_at_call = du.reaching(jsr, Reg::T4);
        assert_eq!(t4_at_call.len(), 1, "call must use the conditionally-clobbered reg");
        assert_eq!(du.site(t4_at_call[0]).0, DefSite::Inst(ldi));
        assert!(!du.reaching(jsr, Reg::T3).is_empty(), "callee reads T3 through the call");
        // Liveness: T4 is live across the block entry (the call does not
        // kill it) — it would have been dead under a may-write kill.
        let lv = Liveness::compute(&p, f, &cfg, &ws);
        assert!(lv.is_live_in(BlockId(0), Reg::T3));
        assert!(!lv.is_live_in(BlockId(0), Reg::T4), "defined before the call in-block");
        let after_ldi =
            Liveness::transfer(&p, &ws, &f.block(BlockId(0)).insts[1], 1 << Reg::T4.index());
        assert!(after_ldi & (1 << Reg::T4.index()) != 0, "jsr must not kill a may-write");
    }

    /// An unconditional callee write *is* a kill: the old modeling stays
    /// intact where it was already sound, so precision is not lost.
    #[test]
    fn unconditional_callee_writes_still_kill() {
        let mut pb = ProgramBuilder::new();
        pb.declare("setter", 0);
        let mut c = pb.function("setter", 0);
        c.block("entry");
        c.ldi(Reg::T3, 7);
        c.ret();
        pb.finish(c);
        let mut m = pb.function("main", 0);
        m.block("entry");
        m.ldi(Reg::T3, 1);
        m.jsr("setter");
        m.out(Width::D, Reg::T3);
        m.halt();
        pb.finish(m);
        let p = pb.build().unwrap();
        let f = p.func_by_name("main").unwrap();
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let du = DefUse::build(&p, f, &cfg, &ws);
        let jsr = InstRef::new(f.id, BlockId(0), 1);
        assert!(du.reaching(jsr, Reg::T3).is_empty(), "must-write is not a call use");
        let after =
            Liveness::transfer(&p, &ws, &f.block(BlockId(0)).insts[1], 1 << Reg::T3.index());
        assert!(after & (1 << Reg::T3.index()) == 0, "must-write kills liveness");
    }

    #[test]
    fn liveness_kills_defs_and_propagates_uses() {
        let p = diamond();
        let f = p.func(p.entry);
        let cfg = Cfg::new(f);
        let ws = WriteSummaries::compute(&p);
        let lv = Liveness::compute(&p, f, &cfg, &ws);
        // T1 live into join (used there), T0 also (used by add).
        assert!(lv.is_live_in(BlockId(3), Reg::T1));
        assert!(lv.is_live_in(BlockId(3), Reg::T0));
        // T2 is not live into join (defined there).
        assert!(!lv.is_live_in(BlockId(3), Reg::T2));
        // T1 not live into entry (defined on both arms before use).
        assert!(!lv.is_live_in(BlockId(0), Reg::T1));
    }
}
