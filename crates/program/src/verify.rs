//! Structural verification of programs.

use crate::{InstRef, Program};
use og_isa::{Op, Operand, Target};
use std::fmt;

/// A structural invariant violation detected by [`Program::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block is empty.
    EmptyBlock {
        /// Offending location (idx is unused).
        at: InstRef,
    },
    /// A block's last instruction is not a terminator.
    NotTerminated {
        /// Offending location.
        at: InstRef,
    },
    /// A terminator appears before the end of a block.
    TerminatorMidBlock {
        /// Offending location.
        at: InstRef,
    },
    /// A branch targets a block id that does not exist.
    BadBranchTarget {
        /// Offending location.
        at: InstRef,
        /// The out-of-range block id.
        target: u32,
    },
    /// A call targets a function id that does not exist.
    BadCallTarget {
        /// Offending location.
        at: InstRef,
        /// The out-of-range function id.
        target: u32,
    },
    /// An instruction's operand shape does not match its operation.
    BadOperands {
        /// Offending location.
        at: InstRef,
        /// What is wrong.
        what: &'static str,
    },
    /// The program's entry function id is out of range.
    BadEntry,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyBlock { at } => write!(f, "empty block at {at}"),
            VerifyError::NotTerminated { at } => write!(f, "block not terminated at {at}"),
            VerifyError::TerminatorMidBlock { at } => {
                write!(f, "terminator before end of block at {at}")
            }
            VerifyError::BadBranchTarget { at, target } => {
                write!(f, "branch to nonexistent block {target} at {at}")
            }
            VerifyError::BadCallTarget { at, target } => {
                write!(f, "call to nonexistent function {target} at {at}")
            }
            VerifyError::BadOperands { at, what } => write!(f, "{what} at {at}"),
            VerifyError::BadEntry => write!(f, "entry function id out of range"),
        }
    }
}

impl std::error::Error for VerifyError {}

pub(crate) fn verify(p: &Program) -> Result<(), VerifyError> {
    if p.entry.index() >= p.funcs.len() {
        return Err(VerifyError::BadEntry);
    }
    for f in &p.funcs {
        let n_blocks = f.blocks.len() as u32;
        for (bi, b) in f.blocks.iter().enumerate() {
            let first = InstRef::new(f.id, crate::BlockId(bi as u32), 0);
            if b.insts.is_empty() {
                return Err(VerifyError::EmptyBlock { at: first });
            }
            for (ii, inst) in b.insts.iter().enumerate() {
                let at = InstRef::new(f.id, crate::BlockId(bi as u32), ii as u32);
                let last = ii + 1 == b.insts.len();
                if inst.op.is_terminator() && !last {
                    return Err(VerifyError::TerminatorMidBlock { at });
                }
                if last && !inst.op.is_terminator() {
                    return Err(VerifyError::NotTerminated { at });
                }
                check_operands(inst, at)?;
                match inst.target {
                    Target::Block(t) => {
                        if t >= n_blocks {
                            return Err(VerifyError::BadBranchTarget { at, target: t });
                        }
                    }
                    Target::CondBlocks { taken, fall } => {
                        for t in [taken, fall] {
                            if t >= n_blocks {
                                return Err(VerifyError::BadBranchTarget { at, target: t });
                            }
                        }
                    }
                    Target::Func(t) => {
                        if t as usize >= p.funcs.len() {
                            return Err(VerifyError::BadCallTarget { at, target: t });
                        }
                    }
                    Target::None => {}
                }
            }
        }
    }
    Ok(())
}

fn check_operands(inst: &og_isa::Inst, at: InstRef) -> Result<(), VerifyError> {
    let bad = |what| Err(VerifyError::BadOperands { at, what });
    if inst.op.has_dst() && inst.dst.is_none() {
        return bad("missing destination register");
    }
    if !inst.op.has_dst() && inst.dst.is_some() {
        return bad("unexpected destination register");
    }
    match inst.op {
        Op::Ld { .. } if inst.src1.is_none() => bad("load without base register"),
        Op::St if inst.src1.is_none() || inst.src2.reg().is_none() => {
            bad("store needs data and base registers")
        }
        Op::Ldi if inst.src2.imm().is_none() => bad("ldi without immediate"),
        Op::Zapnot if inst.src2.imm().is_none() => bad("zapnot needs an immediate byte mask"),
        Op::Bc(_) => {
            if inst.src1.is_none() {
                bad("conditional branch without test register")
            } else if !matches!(inst.target, Target::CondBlocks { .. }) {
                bad("conditional branch without taken/fall targets")
            } else {
                Ok(())
            }
        }
        Op::Br if !matches!(inst.target, Target::Block(_)) => bad("br without block target"),
        Op::Jsr if !matches!(inst.target, Target::Func(_)) => bad("jsr without function target"),
        Op::Out if inst.src1.is_none() => bad("out without source register"),
        Op::Sext | Op::Zext if matches!(inst.src2, Operand::None) => {
            bad("extension without source operand")
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{Inst, Reg, Width};

    fn good() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 1);
        f.add(Width::D, Reg::T0, Reg::T0, imm(1));
        f.halt();
        pb.finish(f);
        pb.build().unwrap()
    }

    #[test]
    fn good_program_verifies() {
        assert!(good().verify().is_ok());
    }

    #[test]
    fn detects_mid_block_terminator() {
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        f.blocks[0].insts.insert(0, Inst::halt());
        assert!(matches!(p.verify(), Err(VerifyError::TerminatorMidBlock { .. })));
    }

    #[test]
    fn detects_unterminated_block() {
        let mut p = good();
        p.func_mut(crate::FuncId(0)).blocks[0].insts.pop();
        assert!(matches!(p.verify(), Err(VerifyError::NotTerminated { .. })));
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        let n = f.blocks[0].insts.len();
        f.blocks[0].insts[n - 1] = Inst::br(99);
        assert!(matches!(p.verify(), Err(VerifyError::BadBranchTarget { target: 99, .. })));
    }

    #[test]
    fn detects_bad_call_target() {
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        f.blocks[0].insts.insert(0, Inst::jsr(42));
        assert!(matches!(p.verify(), Err(VerifyError::BadCallTarget { target: 42, .. })));
    }

    #[test]
    fn detects_empty_block() {
        let mut p = good();
        p.func_mut(crate::FuncId(0)).blocks.push(crate::Block::new("empty"));
        assert!(matches!(p.verify(), Err(VerifyError::EmptyBlock { .. })));
    }
}
