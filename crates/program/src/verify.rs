//! Multi-pass structural verification of programs.
//!
//! The verifier is the trust boundary of the pipeline: untrusted input
//! (hand-written assembly, decoded `*.og.json`, fuzzer candidates) is
//! checked here **once**, and everything downstream — lowering, both VM
//! engines, the transforms — relies on the invariant
//!
//! > **verify `Ok` ⇒ the VM never encounters a structural error.**
//!
//! Concretely: a program accepted by [`Program::verify`] lowers to a flat
//! form with no `Malformed` slots, and neither the flat engine nor the
//! reference interpreter can ever report `VmError::Malformed` while running
//! it. `og-vm` spends this invariant in `FlatProgram::lower_verified`,
//! which drops the per-step defensive checks from the hot loop.
//!
//! ## Pass pipeline
//!
//! Verification runs as passes in dependency order over a shared
//! [`ProgramContext`], each appending to one diagnostics list so a single
//! call reports **all** defects ([`Program::verify_all`]):
//!
//! 1. **structure** — entry-function and per-function entry-block validity,
//!    no empty blocks, exactly one terminator and only at the end of each
//!    block;
//! 2. **operands** — per-instruction operand shape against the [`Op`]
//!    (destination presence both directions, required sources/immediates),
//!    including the [`og_isa::TargetShape`] check that rejects stray
//!    control-flow targets on non-control instructions;
//! 3. **targets** — every branch/call target id is in range.
//!
//! Two further passes run only on structurally valid programs and record
//! *facts* rather than errors: **cfg** (per-function reachability — an
//! unreachable block is legal, but it is still fully verified so trusted
//! lowering stays `Malformed`-free) and **call graph** (recursion
//! detection and, where the call graph reachable from the entry is
//! acyclic, a provable bound on dynamic call-stack depth — the certificate
//! the fuzz oracle checks against `RunConfig::max_call_depth`).
//!
//! [`Program::verify`] is the fail-fast shim over the same pipeline,
//! returning the first error for callers that only need accept/reject.

use crate::{BlockId, BlockRef, CallGraph, Cfg, FuncId, InstRef, Program};
use og_isa::{Inst, Op, Operand, Target, TargetShape};
use std::fmt;

/// A structural invariant violation detected by [`Program::verify`] /
/// [`Program::verify_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A block is empty.
    EmptyBlock {
        /// The offending block.
        at: BlockRef,
    },
    /// A function's entry block id is out of range.
    BadEntryBlock {
        /// The function and its out-of-range entry block id.
        at: BlockRef,
    },
    /// A block's last instruction is not a terminator.
    NotTerminated {
        /// Offending location.
        at: InstRef,
    },
    /// A terminator appears before the end of a block.
    TerminatorMidBlock {
        /// Offending location.
        at: InstRef,
    },
    /// A branch targets a block id that does not exist.
    BadBranchTarget {
        /// Offending location.
        at: InstRef,
        /// The out-of-range block id.
        target: u32,
    },
    /// A call targets a function id that does not exist.
    BadCallTarget {
        /// Offending location.
        at: InstRef,
        /// The out-of-range function id.
        target: u32,
    },
    /// An instruction's operand shape does not match its operation.
    BadOperands {
        /// Offending location.
        at: InstRef,
        /// What is wrong.
        what: &'static str,
    },
    /// An instruction carries a control-flow target although its operation
    /// transfers no control.
    StrayTarget {
        /// Offending location.
        at: InstRef,
    },
    /// The program's entry function id is out of range.
    BadEntry,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::EmptyBlock { at } => write!(f, "empty block at {at}"),
            VerifyError::BadEntryBlock { at } => {
                write!(f, "function entry block does not exist: {at}")
            }
            VerifyError::NotTerminated { at } => write!(f, "block not terminated at {at}"),
            VerifyError::TerminatorMidBlock { at } => {
                write!(f, "terminator before end of block at {at}")
            }
            VerifyError::BadBranchTarget { at, target } => {
                write!(f, "branch to nonexistent block {target} at {at}")
            }
            VerifyError::BadCallTarget { at, target } => {
                write!(f, "call to nonexistent function {target} at {at}")
            }
            VerifyError::BadOperands { at, what } => write!(f, "{what} at {at}"),
            VerifyError::StrayTarget { at } => {
                write!(f, "stray control-flow target on a non-control instruction at {at}")
            }
            VerifyError::BadEntry => write!(f, "entry function id out of range"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Facts the information passes establish about a structurally valid
/// program, returned by [`Program::verify_all`].
///
/// These are not errors: unreachable blocks and recursion are both legal.
/// They are certificates downstream consumers can spend — the fuzz oracle,
/// for example, treats `static_call_depth ≤ max_call_depth` as a proof
/// that a run can never end in `CallDepthExceeded`.
#[derive(Debug, Clone, Default)]
pub struct ProgramContext {
    /// Blocks not reachable from their function's entry block. Legal (the
    /// VM never executes them), but still fully verified so that trusted
    /// lowering stays free of `Malformed` slots.
    pub unreachable_blocks: Vec<BlockRef>,
    /// True when the static call graph contains no cycle at all.
    pub recursion_free: bool,
    /// Provable upper bound on the number of frames ever live on the call
    /// stack, when every call chain from the entry function is acyclic;
    /// `None` when recursion reachable from the entry makes the depth
    /// unbounded.
    pub static_call_depth: Option<usize>,
}

/// Run every pass, collecting all diagnostics.
pub(crate) fn verify_all(p: &Program) -> Result<ProgramContext, Vec<VerifyError>> {
    let mut errors = Vec::new();
    pass_structure(p, &mut errors);
    pass_operands(p, &mut errors);
    pass_targets(p, &mut errors);
    if !errors.is_empty() {
        return Err(errors);
    }
    // The information passes index functions and blocks by the ids the
    // passes above validated, so they only run on clean programs.
    let mut ctx = ProgramContext::default();
    pass_cfg(p, &mut ctx);
    pass_callgraph(p, &mut ctx);
    Ok(ctx)
}

/// Fail-fast shim over [`verify_all`]: first diagnostic only.
pub(crate) fn verify(p: &Program) -> Result<(), VerifyError> {
    match verify_all(p) {
        Ok(_) => Ok(()),
        Err(mut errors) => Err(errors.remove(0)),
    }
}

/// Pass 1: entry validity, empty blocks, terminator placement.
fn pass_structure(p: &Program, errors: &mut Vec<VerifyError>) {
    if p.entry.index() >= p.funcs.len() {
        errors.push(VerifyError::BadEntry);
    }
    for f in &p.funcs {
        if f.entry.index() >= f.blocks.len() {
            errors.push(VerifyError::BadEntryBlock { at: BlockRef::new(f.id, f.entry) });
        }
        for (bi, b) in f.blocks.iter().enumerate() {
            let block = BlockId(bi as u32);
            if b.insts.is_empty() {
                errors.push(VerifyError::EmptyBlock { at: BlockRef::new(f.id, block) });
                continue;
            }
            for (ii, inst) in b.insts.iter().enumerate() {
                let at = InstRef::new(f.id, block, ii as u32);
                let last = ii + 1 == b.insts.len();
                if inst.op.is_terminator() && !last {
                    errors.push(VerifyError::TerminatorMidBlock { at });
                }
                if last && !inst.op.is_terminator() {
                    errors.push(VerifyError::NotTerminated { at });
                }
            }
        }
    }
}

/// Pass 2: per-instruction operand and target *shape* against the [`Op`].
fn pass_operands(p: &Program, errors: &mut Vec<VerifyError>) {
    for f in &p.funcs {
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                let at = InstRef::new(f.id, BlockId(bi as u32), ii as u32);
                check_inst(inst, at, errors);
            }
        }
    }
}

fn check_inst(inst: &Inst, at: InstRef, errors: &mut Vec<VerifyError>) {
    if inst.op.has_dst() && inst.dst.is_none() {
        errors.push(VerifyError::BadOperands { at, what: "missing destination register" });
    }
    if !inst.op.has_dst() && inst.dst.is_some() {
        errors.push(VerifyError::BadOperands { at, what: "unexpected destination register" });
    }
    let source_defect = match inst.op {
        Op::Ld { .. } if inst.src1.is_none() => Some("load without base register"),
        Op::St if inst.src1.is_none() || inst.src2.reg().is_none() => {
            Some("store needs data and base registers")
        }
        Op::Ldi if inst.src2.imm().is_none() => Some("ldi without immediate"),
        Op::Zapnot if inst.src2.imm().is_none() => Some("zapnot needs an immediate byte mask"),
        Op::Bc(_) if inst.src1.is_none() => Some("conditional branch without test register"),
        Op::Out if inst.src1.is_none() => Some("out without source register"),
        Op::Sext | Op::Zext if matches!(inst.src2, Operand::None) => {
            Some("extension without source operand")
        }
        _ => None,
    };
    if let Some(what) = source_defect {
        errors.push(VerifyError::BadOperands { at, what });
    }
    let shape = inst.op.target_shape();
    if !shape.admits(inst.target) {
        errors.push(match shape {
            TargetShape::None => VerifyError::StrayTarget { at },
            TargetShape::Block => VerifyError::BadOperands { at, what: "br without block target" },
            TargetShape::CondBlocks => VerifyError::BadOperands {
                at,
                what: "conditional branch without taken/fall targets",
            },
            TargetShape::Func => {
                VerifyError::BadOperands { at, what: "jsr without function target" }
            }
        });
    }
}

/// Pass 3: every branch/call target id present on an instruction is in
/// range, whatever the instruction's operation (a stray target is reported
/// by pass 2; an out-of-range stray target is additionally reported here).
fn pass_targets(p: &Program, errors: &mut Vec<VerifyError>) {
    let n_funcs = p.funcs.len();
    for f in &p.funcs {
        let n_blocks = f.blocks.len() as u32;
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                let at = InstRef::new(f.id, BlockId(bi as u32), ii as u32);
                match inst.target {
                    Target::Block(t) => {
                        if t >= n_blocks {
                            errors.push(VerifyError::BadBranchTarget { at, target: t });
                        }
                    }
                    Target::CondBlocks { taken, fall } => {
                        for t in [taken, fall] {
                            if t >= n_blocks {
                                errors.push(VerifyError::BadBranchTarget { at, target: t });
                            }
                        }
                    }
                    Target::Func(t) => {
                        if t as usize >= n_funcs {
                            errors.push(VerifyError::BadCallTarget { at, target: t });
                        }
                    }
                    Target::None => {}
                }
            }
        }
    }
}

/// Pass 4 (information): per-function reachability from the entry block.
fn pass_cfg(p: &Program, ctx: &mut ProgramContext) {
    for f in &p.funcs {
        let cfg = Cfg::new(f);
        for b in f.block_ids() {
            if !cfg.is_reachable(b) {
                ctx.unreachable_blocks.push(BlockRef::new(f.id, b));
            }
        }
    }
}

/// Pass 5 (information): recursion detection and, when the call graph
/// reachable from the entry is acyclic, the longest call chain from the
/// entry — an upper bound on how many frames the VM's call stack can ever
/// hold at once.
fn pass_callgraph(p: &Program, ctx: &mut ProgramContext) {
    let cg = CallGraph::new(p);
    let n = p.funcs.len();
    // Iterative DFS with colors: 0 unvisited, 1 on the stack, 2 finished.
    // A callee edge into a color-1 function is a back edge, i.e. a cycle.
    let mut color = vec![0u8; n];
    // Longest chain of nested calls below each finished function, in edges.
    let mut depth = vec![0usize; n];
    let mut cyclic = false;
    let mut entry_cyclic = false;
    let mut roots: Vec<FuncId> = vec![p.entry];
    roots.extend((0..n as u32).map(FuncId));
    for root in roots {
        // The first traversal is rooted at the entry, so every cycle it
        // finds is reachable from the entry; later roots only sweep up
        // functions the entry cannot reach.
        let from_entry = root == p.entry;
        if color[root.index()] != 0 {
            continue;
        }
        color[root.index()] = 1;
        let mut stack: Vec<(FuncId, usize)> = vec![(root, 0)];
        while let Some(&mut (f, ref mut i)) = stack.last_mut() {
            let callees = cg.callees(f);
            if *i < callees.len() {
                let c = callees[*i];
                *i += 1;
                match color[c.index()] {
                    0 => {
                        color[c.index()] = 1;
                        stack.push((c, 0));
                    }
                    1 => {
                        cyclic = true;
                        if from_entry {
                            entry_cyclic = true;
                        }
                    }
                    _ => {}
                }
            } else {
                color[f.index()] = 2;
                depth[f.index()] = callees.iter().map(|c| depth[c.index()] + 1).max().unwrap_or(0);
                stack.pop();
            }
        }
    }
    ctx.recursion_free = !cyclic;
    ctx.static_call_depth = (!entry_cyclic).then_some(depth[p.entry.index()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{Inst, Reg, Width};

    fn good() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 1);
        f.add(Width::D, Reg::T0, Reg::T0, imm(1));
        f.halt();
        pb.finish(f);
        pb.build().unwrap()
    }

    #[test]
    fn good_program_verifies() {
        assert!(good().verify().is_ok());
        let ctx = good().verify_all().unwrap();
        assert!(ctx.unreachable_blocks.is_empty());
        assert!(ctx.recursion_free);
        assert_eq!(ctx.static_call_depth, Some(0));
    }

    #[test]
    fn detects_mid_block_terminator() {
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        f.blocks[0].insts.insert(0, Inst::halt());
        assert!(matches!(p.verify(), Err(VerifyError::TerminatorMidBlock { .. })));
    }

    #[test]
    fn detects_unterminated_block() {
        let mut p = good();
        p.func_mut(crate::FuncId(0)).blocks[0].insts.pop();
        assert!(matches!(p.verify(), Err(VerifyError::NotTerminated { .. })));
    }

    #[test]
    fn detects_bad_branch_target() {
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        let n = f.blocks[0].insts.len();
        f.blocks[0].insts[n - 1] = Inst::br(99);
        assert!(matches!(p.verify(), Err(VerifyError::BadBranchTarget { target: 99, .. })));
    }

    #[test]
    fn detects_bad_call_target() {
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        f.blocks[0].insts.insert(0, Inst::jsr(42));
        assert!(matches!(p.verify(), Err(VerifyError::BadCallTarget { target: 42, .. })));
    }

    #[test]
    fn detects_empty_block() {
        let mut p = good();
        p.func_mut(crate::FuncId(0)).blocks.push(crate::Block::new("empty"));
        let err = p.verify().unwrap_err();
        match err {
            // Block-level location: no instruction index in the rendering.
            VerifyError::EmptyBlock { at } => assert_eq!(at.to_string(), "@f0.b1"),
            other => panic!("expected EmptyBlock, got {other:?}"),
        }
    }

    #[test]
    fn detects_bad_entry_block() {
        let mut p = good();
        p.func_mut(crate::FuncId(0)).entry = crate::BlockId(7);
        assert!(matches!(
            p.verify(),
            Err(VerifyError::BadEntryBlock { at }) if at.block == crate::BlockId(7)
        ));
    }

    #[test]
    fn detects_stray_target_on_non_control_op() {
        // An `add` carrying a block target executes fine (the VM ignores
        // the field) but is structurally bogus; before the target-shape
        // pass this verified Ok.
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        f.blocks[0].insts[1].target = Target::Block(0);
        assert!(matches!(p.verify(), Err(VerifyError::StrayTarget { .. })));
    }

    #[test]
    fn collects_all_errors_across_one_program() {
        // One program, three independent defects: a bad branch target, a
        // missing destination register, and an unterminated block.
        let mut p = good();
        let f = p.func_mut(crate::FuncId(0));
        f.blocks[0].insts[0].dst = None; // ldi loses its destination
        let n = f.blocks[0].insts.len();
        f.blocks[0].insts[n - 1] = Inst::br(99); // branch out of range
        f.blocks.push(crate::Block::new("tail"));
        f.blocks[1].insts.push(Inst::ldi(Reg::T1, 0)); // unterminated block
        let errors = p.verify_all().unwrap_err();
        assert!(
            errors.iter().any(|e| matches!(e, VerifyError::BadBranchTarget { target: 99, .. })),
            "missing BadBranchTarget in {errors:?}"
        );
        assert!(
            errors.iter().any(|e| matches!(
                e,
                VerifyError::BadOperands { what: "missing destination register", .. }
            )),
            "missing BadOperands in {errors:?}"
        );
        assert!(
            errors.iter().any(|e| matches!(e, VerifyError::NotTerminated { .. })),
            "missing NotTerminated in {errors:?}"
        );
        assert_eq!(errors.len(), 3, "exactly the three defects: {errors:?}");
        // The fail-fast shim surfaces the first of them.
        assert_eq!(p.verify().unwrap_err(), errors[0]);
    }

    #[test]
    fn unreachable_blocks_are_legal_but_recorded() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.halt();
        f.block("island");
        f.ret();
        pb.finish(f);
        let p = pb.build().unwrap();
        let ctx = p.verify_all().unwrap();
        assert_eq!(ctx.unreachable_blocks.len(), 1);
        assert_eq!(ctx.unreachable_blocks[0].to_string(), "@f0.b1");
    }

    #[test]
    fn static_call_depth_bounds_a_call_chain() {
        let mut pb = ProgramBuilder::new();
        let mut leaf = pb.function("leaf", 0);
        leaf.block("entry");
        leaf.ret();
        pb.finish(leaf);
        let mut mid = pb.function("mid", 0);
        mid.block("entry");
        mid.jsr("leaf");
        mid.ret();
        pb.finish(mid);
        let mut main = pb.function("main", 0);
        main.block("entry");
        main.jsr("mid");
        main.halt();
        pb.finish(main);
        let p = pb.build().unwrap();
        let ctx = p.verify_all().unwrap();
        assert!(ctx.recursion_free);
        assert_eq!(ctx.static_call_depth, Some(2));
    }

    #[test]
    fn recursion_is_legal_but_uncertified() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.jsr("main");
        f.halt();
        pb.finish(f);
        let p = pb.build().unwrap();
        let ctx = p.verify_all().unwrap();
        assert!(!ctx.recursion_free);
        assert_eq!(ctx.static_call_depth, None);
    }
}
