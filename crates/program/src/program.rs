//! The top-level [`Program`] container.

use crate::{DataSegment, FuncId, InstRef, Layout};
use og_isa::{IsaExtension, OpClass, Width};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A whole program: functions, an entry point, and a static data segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Functions; `FuncId` indexes into this vector.
    pub funcs: Vec<crate::Function>,
    /// The entry function (conventionally `main`).
    pub entry: FuncId,
    /// Static data.
    pub data: DataSegment,
}

impl Program {
    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func(&self, f: FuncId) -> &crate::Function {
        &self.funcs[f.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    #[inline]
    pub fn func_mut(&mut self, f: FuncId) -> &mut crate::Function {
        &mut self.funcs[f.index()]
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&crate::Function> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// The instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    #[inline]
    pub fn inst(&self, r: InstRef) -> &og_isa::Inst {
        self.func(r.func).inst(r)
    }

    /// Mutable access to the instruction at `r`.
    ///
    /// # Panics
    ///
    /// Panics if the reference is out of range.
    #[inline]
    pub fn inst_mut(&mut self, r: InstRef) -> &mut og_isa::Inst {
        self.func_mut(r.func).inst_mut(r)
    }

    /// Iterate over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Iterate over `(InstRef, &Inst)` for every instruction of every
    /// function.
    pub fn insts(&self) -> impl Iterator<Item = (InstRef, &og_isa::Inst)> {
        self.funcs.iter().flat_map(|f| f.insts())
    }

    /// Total static instruction count.
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }

    /// Compute the address layout (nominal 8 bytes per instruction).
    pub fn layout(&self) -> Layout {
        Layout::compute(self)
    }

    /// Static instruction statistics (per-class and per-width counts).
    pub fn static_stats(&self) -> StaticStats {
        let mut s = StaticStats::default();
        for (_, i) in self.insts() {
            s.total += 1;
            *s.by_class.entry(i.op.class()).or_insert(0) += 1;
            if i.op.class() != OpClass::Ctrl {
                s.by_width[width_index(i.width)] += 1;
            }
        }
        s
    }

    /// Widen every instruction whose width has no opcode under `ext` to the
    /// narrowest available one (§4.3: if a narrow opcode does not exist the
    /// wider variant must be used).
    ///
    /// Returns the number of instructions that were widened.
    pub fn legalize(&mut self, ext: IsaExtension) -> usize {
        let mut widened = 0;
        for f in &mut self.funcs {
            for b in &mut f.blocks {
                for i in &mut b.insts {
                    let assigned = ext.assign(i.op, i.width);
                    if assigned != i.width {
                        i.width = assigned;
                        widened += 1;
                    }
                }
            }
        }
        widened
    }

    /// Verify structural invariants; see [`crate::VerifyError`].
    ///
    /// Fail-fast shim over [`Program::verify_all`] for callers that only
    /// need accept/reject.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(&self) -> Result<(), crate::VerifyError> {
        crate::verify::verify(self)
    }

    /// Run the full verification pipeline, collecting **all** diagnostics.
    ///
    /// On success returns the [`crate::ProgramContext`] of facts the
    /// information passes established (reachability, recursion freedom,
    /// provable call-stack depth). See the `verify` module docs for the
    /// pass pipeline and the `Ok ⇒ no structural VM error` invariant.
    ///
    /// # Errors
    ///
    /// Returns every violation found, in pass order then program order.
    pub fn verify_all(&self) -> Result<crate::ProgramContext, Vec<crate::VerifyError>> {
        crate::verify::verify_all(self)
    }
}

fn width_index(w: Width) -> usize {
    match w {
        Width::B => 0,
        Width::H => 1,
        Width::W => 2,
        Width::D => 3,
    }
}

/// Static instruction statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StaticStats {
    /// Total instruction count.
    pub total: usize,
    /// Counts per operation class.
    pub by_class: HashMap<OpClass, usize>,
    /// Counts per width (indices 0..4 = 8/16/32/64 bit), control-flow
    /// instructions excluded.
    pub by_width: [usize; 4],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{imm, ProgramBuilder};
    use og_isa::{Op, Reg};

    fn two_func_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut callee = pb.function("inc", 1);
        callee.block("entry");
        callee.add(Width::W, Reg::V0, Reg::A0, imm(1));
        callee.ret();
        pb.finish(callee);
        let mut main = pb.function("main", 0);
        main.block("entry");
        main.ldi(Reg::A0, 5);
        main.jsr("inc");
        main.out(Width::B, Reg::V0);
        main.halt();
        pb.finish(main);
        pb.build().unwrap()
    }

    #[test]
    fn lookup_and_iteration() {
        let p = two_func_program();
        assert_eq!(p.funcs.len(), 2);
        assert!(p.func_by_name("inc").is_some());
        assert!(p.func_by_name("nope").is_none());
        assert_eq!(p.func(p.entry).name, "main");
        assert_eq!(p.inst_count(), 6);
    }

    #[test]
    fn static_stats_counts() {
        let p = two_func_program();
        let s = p.static_stats();
        assert_eq!(s.total, 6);
        assert_eq!(s.by_class[&OpClass::Add], 2); // ldi + add (ldi counts as Add)
        assert!(s.by_class.contains_key(&OpClass::Ctrl));
    }

    #[test]
    fn legalize_widens_unavailable_widths() {
        let mut p = two_func_program();
        // Force a byte AND, unavailable on the base Alpha ISA.
        let r = p
            .insts()
            .find(|(_, i)| i.op == Op::Add && i.width == Width::W)
            .map(|(r, _)| r)
            .unwrap();
        p.inst_mut(r).op = Op::And;
        p.inst_mut(r).width = Width::B;
        let widened = p.legalize(IsaExtension::Base);
        assert_eq!(widened, 1);
        assert_eq!(p.inst(r).width, Width::D);
        // The paper extension keeps byte logic.
        p.inst_mut(r).width = Width::B;
        assert_eq!(p.legalize(IsaExtension::PaperAlphaExt), 0);
    }
}
