//! Random program generation for property-based differential testing.
//!
//! The central correctness property of this repository is *observational
//! equivalence*: a program transformed by VRP or VRS must produce exactly
//! the same output stream as the original. The generator below produces
//! arbitrary — but always terminating and memory-safe — programs that
//! stress the analyses: mixed-width arithmetic, byte manipulation,
//! bounded loops, branches whose conditions carry range information,
//! memory round-trips through a scratch buffer, and helper-function calls.

use crate::rng::SplitMix64;
use crate::{imm, FunctionBuilder, Program, ProgramBuilder};
use og_isa::{CmpKind, Cond, Op, Operand, Reg, Width};

/// Tuning knobs for [`generate_program`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce identical programs.
    pub seed: u64,
    /// Number of top-level regions (straight-line / loop / diamond /
    /// memory / call) in `main`.
    pub regions: usize,
    /// Maximum ALU instructions per straight-line stretch.
    pub max_straight: usize,
    /// Generate loads/stores to a scratch buffer.
    pub memory: bool,
    /// Generate helper-function calls.
    pub calls: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { seed: 0, regions: 6, max_straight: 8, memory: true, calls: true }
    }
}

/// Registers the generator computes with (caller-saved temporaries).
const POOL: [Reg; 8] = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7];

/// Scratch buffer length in 8-byte slots.
const SCRATCH_SLOTS: i64 = 16;

/// Generate a random, terminating, self-contained program.
///
/// The program ends by emitting every pool register with `out.d`, followed
/// by `halt`, so any semantic divergence introduced by a transformation
/// shows up in the output stream.
pub fn generate_program(cfg: &GenConfig) -> Program {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut pb = ProgramBuilder::new();
    pb.data_zeroed("scratch", (SCRATCH_SLOTS * 8) as usize);

    if cfg.calls {
        // A small pure helper: v0 = f(a0, a1).
        let mut h = pb.function("helper", 2);
        h.block("entry");
        h.add(Width::W, Reg::V0, Reg::A0, Reg::A1);
        h.xor(Width::W, Reg::V0, Reg::V0, imm(0x5A));
        h.and(Width::D, Reg::V0, Reg::V0, imm(0xFFFF));
        h.ret();
        pb.finish(h);
    }

    let mut f = pb.function("main", 0);
    f.block("entry");
    // Initialize the register pool with values of assorted widths.
    for (i, &r) in POOL.iter().enumerate() {
        let v = match i % 4 {
            0 => rng.range_i64(0, 0xFF),
            1 => rng.range_i64(-0x8000, 0x7FFF),
            2 => rng.range_i64(-0x8000_0000, 0x7FFF_FFFF),
            _ => rng.next_u64() as i64,
        };
        f.ldi(r, v);
    }
    f.la(Reg::S0, "scratch");

    let mut label = 0u32;
    let mut fresh = move || {
        label += 1;
        format!("g{label}")
    };

    for _ in 0..cfg.regions {
        match rng.below(5) {
            0 | 1 => straight(&mut f, &mut rng, cfg.max_straight),
            2 => counted_loop(&mut f, &mut rng, &mut fresh, cfg.max_straight),
            3 => diamond(&mut f, &mut rng, &mut fresh, cfg.max_straight),
            _ => {
                if cfg.memory {
                    memory_round_trip(&mut f, &mut rng);
                } else if cfg.calls {
                    call_helper(&mut f, &mut rng);
                } else {
                    straight(&mut f, &mut rng, cfg.max_straight);
                }
                if cfg.calls && rng.chance(1, 2) {
                    call_helper(&mut f, &mut rng);
                }
            }
        }
    }

    for &r in &POOL {
        f.out(Width::D, r);
    }
    f.halt();
    pb.finish(f);
    pb.build().expect("generated program must build")
}

fn rand_width(rng: &mut SplitMix64) -> Width {
    *rng.pick(&Width::ALL)
}

fn rand_src(rng: &mut SplitMix64) -> Reg {
    *rng.pick(&POOL)
}

fn rand_operand(rng: &mut SplitMix64) -> Operand {
    if rng.chance(1, 3) {
        Operand::Imm(rng.range_i64(-128, 127))
    } else {
        Operand::Reg(rand_src(rng))
    }
}

fn straight(f: &mut FunctionBuilder, rng: &mut SplitMix64, max: usize) {
    let n = rng.below(max as u64) + 1;
    for _ in 0..n {
        let dst = rand_src(rng);
        let a = rand_src(rng);
        let w = rand_width(rng);
        match rng.below(12) {
            0 => f.add(w, dst, a, rand_operand(rng)),
            1 => f.sub(w, dst, a, rand_operand(rng)),
            2 => f.mul(w, dst, a, rand_operand(rng)),
            3 => f.and(w, dst, a, rand_operand(rng)),
            4 => f.or(w, dst, a, rand_operand(rng)),
            5 => f.xor(w, dst, a, rand_operand(rng)),
            6 => f.sll(w, dst, a, imm(rng.range_i64(0, 7))),
            7 => f.srl(w, dst, a, imm(rng.range_i64(0, 7))),
            8 => f.cmp(*rng.pick(&CmpKind::ALL), w, dst, a, rand_operand(rng)),
            9 => f.cmov(*rng.pick(&Cond::ALL), w, dst, a, rand_operand(rng)),
            10 => f.zapnot(dst, a, (rng.next_u64() & 0xFF) as u8),
            _ => {
                let op = *rng.pick(&[Op::Sext, Op::Zext]);
                let val = Operand::Reg(a);
                if op == Op::Sext {
                    f.sext(w, dst, val)
                } else {
                    f.zext(w, dst, val)
                }
            }
        };
    }
}

fn counted_loop(
    f: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    fresh: &mut impl FnMut() -> String,
    max: usize,
) {
    let head = fresh();
    let exit = fresh();
    let iters = rng.range_i64(1, 12);
    // Use s1 as the iterator and s2 as the comparison scratch so the loop
    // always terminates regardless of what the body does to the pool.
    f.ldi(Reg::S1, 0);
    f.block(&head);
    straight(f, rng, max.min(4));
    f.add(Width::D, Reg::S1, Reg::S1, imm(1));
    f.cmp(CmpKind::Lt, Width::D, Reg::S2, Reg::S1, imm(iters));
    f.bne(Reg::S2, &head);
    f.block(&exit);
}

fn diamond(
    f: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    fresh: &mut impl FnMut() -> String,
    max: usize,
) {
    let then_l = fresh();
    let else_l = fresh();
    let join = fresh();
    let test = rand_src(rng);
    let cond = *rng.pick(&Cond::ALL);
    match cond {
        Cond::Eq => f.beq(test, &then_l),
        Cond::Ne => f.bne(test, &then_l),
        Cond::Lt => f.blt(test, &then_l),
        Cond::Ge => f.bge(test, &then_l),
        Cond::Le => f.ble(test, &then_l),
        Cond::Gt => f.bgt(test, &then_l),
    };
    f.block(&else_l);
    straight(f, rng, max.min(4));
    f.br(&join);
    f.block(&then_l);
    straight(f, rng, max.min(4));
    f.block(&join);
}

fn memory_round_trip(f: &mut FunctionBuilder, rng: &mut SplitMix64) {
    let slot = rng.range_i64(0, SCRATCH_SLOTS - 1) as i32 * 8;
    let w = rand_width(rng);
    let data = rand_src(rng);
    let dst = rand_src(rng);
    f.st(w, data, Reg::S0, slot);
    if rng.chance(1, 2) {
        f.ld(w, dst, Reg::S0, slot);
    } else {
        f.ldu(w, dst, Reg::S0, slot);
    }
}

fn call_helper(f: &mut FunctionBuilder, rng: &mut SplitMix64) {
    let a = rand_src(rng);
    let b = rand_src(rng);
    f.mov(Width::D, Reg::A0, a);
    f.mov(Width::D, Reg::A1, b);
    f.jsr("helper");
    let dst = rand_src(rng);
    f.mov(Width::D, dst, Reg::V0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_verify() {
        for seed in 0..30 {
            let p = generate_program(&GenConfig { seed, ..Default::default() });
            p.verify().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_program(&GenConfig { seed: 7, ..Default::default() });
        let b = generate_program(&GenConfig { seed: 7, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_program(&GenConfig { seed: 1, ..Default::default() });
        let b = generate_program(&GenConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn respects_feature_toggles() {
        let p = generate_program(&GenConfig {
            seed: 3,
            calls: false,
            memory: false,
            ..Default::default()
        });
        assert_eq!(p.funcs.len(), 1);
        for (_, i) in p.insts() {
            assert!(!i.op.is_mem(), "memory op generated despite memory=false");
            assert_ne!(i.op, Op::Jsr);
        }
    }
}
