//! Random program generation for property-based differential testing.
//!
//! The central correctness property of this repository is *observational
//! equivalence*: a program transformed by VRP or VRS must produce exactly
//! the same output stream as the original. The generator below produces
//! arbitrary — but always terminating and memory-safe — programs that
//! stress the analyses: mixed-width arithmetic, byte manipulation,
//! nested counted loops with affine induction, non-affine loops whose
//! exit is value-dependent but fuel-bounded, branches whose conditions
//! carry range information, memory round-trips through a scratch buffer,
//! table scans, and helper-function calls.
//!
//! ## Termination by construction
//!
//! Every generated program provably halts:
//!
//! * counted loops use dedicated iterator registers (never touched by
//!   loop bodies) with constant trip counts;
//! * non-affine loops decrement a dedicated fuel register every
//!   iteration and exit unconditionally when it reaches zero, whatever
//!   the value-dependent continue condition does;
//! * helpers never recurse.
//!
//! [`generate_with_bound`] additionally returns a conservative upper
//! bound on the number of instructions the program can commit, computed
//! alongside generation (each emitted instruction contributes the
//! product of the trip counts of its enclosing loops). The fuzz crate's
//! termination suite runs every program with exactly that budget.

use crate::rng::SplitMix64;
use crate::{imm, FunctionBuilder, Program, ProgramBuilder};
use og_isa::{CmpKind, Cond, Operand, Reg, Width};

/// Tuning knobs for [`generate_program`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; equal seeds produce identical programs.
    pub seed: u64,
    /// Number of top-level regions (straight-line / loop / diamond /
    /// memory / call) in `main`.
    pub regions: usize,
    /// Maximum ALU instructions per straight-line stretch.
    pub max_straight: usize,
    /// Generate loads/stores to a scratch buffer and table scans.
    pub memory: bool,
    /// Generate helper-function calls.
    pub calls: bool,
    /// Maximum nesting depth of counted loops (1 = no nesting).
    pub max_loop_depth: usize,
    /// Generate non-affine (value-dependent, fuel-bounded) loops.
    pub non_affine: bool,
    /// Iteration budget of each non-affine loop's fuel counter.
    pub fuel: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0,
            regions: 6,
            max_straight: 8,
            memory: true,
            calls: true,
            max_loop_depth: 2,
            non_affine: true,
            fuel: 24,
        }
    }
}

/// Registers the generator computes with (caller-saved temporaries).
const POOL: [Reg; 8] = [Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::T4, Reg::T5, Reg::T6, Reg::T7];

/// Per-depth (iterator, compare-scratch) registers for counted loops.
/// Loop bodies only write [`POOL`], so iterators are never clobbered.
const LOOP_REGS: [(Reg, Reg); 3] = [(Reg::S1, Reg::S2), (Reg::S3, Reg::S4), (Reg::S5, Reg::FP)];

/// Fuel counter and scratch of non-affine loops (bodies never touch them).
const FUEL_REG: Reg = Reg::T9;
const FUEL_SCRATCH: Reg = Reg::T11;

/// Scratch buffer length in 8-byte slots.
const SCRATCH_SLOTS: i64 = 16;

/// Length of the constant quads table (power of two: indices are masked).
const TABLE_SLOTS: i64 = 16;

/// Immediates worth feeding a width analysis: every byte-significance
/// boundary, both signs, plus the neighbours that trigger off-by-one
/// wraparound bugs.
const INTERESTING: [i64; 18] = [
    0,
    1,
    -1,
    2,
    127,
    128,
    -128,
    -129,
    255,
    256,
    0x7FFF,
    0x8000,
    -0x8000,
    0xFFFF,
    0x7FFF_FFFF,
    -0x8000_0000,
    0xFFFF_FFFF,
    i64::MAX,
];

/// Generate a random, terminating, self-contained program.
///
/// The program ends by emitting every pool register with `out.d`, followed
/// by `halt`, so any semantic divergence introduced by a transformation
/// shows up in the output stream. Loop bodies also emit intermediate
/// values, so divergence inside a loop cannot be masked by later
/// clobbers.
pub fn generate_program(cfg: &GenConfig) -> Program {
    generate_with_bound(cfg).0
}

/// [`generate_program`] plus a conservative upper bound on committed
/// instructions — the generator's termination certificate.
pub fn generate_with_bound(cfg: &GenConfig) -> (Program, u64) {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut pb = ProgramBuilder::new();
    pb.data_zeroed("scratch", (SCRATCH_SLOTS * 8) as usize);
    let table: Vec<i64> = (0..TABLE_SLOTS)
        .map(|_| if rng.chance(1, 2) { *rng.pick(&INTERESTING) } else { rng.next_u64() as i64 })
        .collect();
    pb.data_quads("table", &table);

    // Static instruction counts of the helpers, for the step bound.
    let mut helper_insts = 0u64;
    let mut mixer_insts = 0u64;
    if cfg.calls {
        // A small pure helper: v0 = f(a0, a1).
        let mut h = pb.function("helper", 2);
        h.block("entry");
        h.add(Width::W, Reg::V0, Reg::A0, Reg::A1);
        h.xor(Width::W, Reg::V0, Reg::V0, imm(0x5A));
        h.and(Width::D, Reg::V0, Reg::V0, imm(0xFFFF));
        h.ret();
        pb.finish(h);
        helper_insts = 4;

        // A helper with an internal counted loop (stresses interprocedural
        // range propagation across a loop boundary).
        let mut m = pb.function("mixer", 2);
        m.block("entry");
        m.ldi(Reg::V0, 1);
        m.ldi(Reg::A2, 4);
        m.block("head");
        m.mul(Width::H, Reg::V0, Reg::V0, imm(3));
        m.add(Width::W, Reg::V0, Reg::V0, Reg::A0);
        m.xor(Width::B, Reg::V0, Reg::V0, Reg::A1);
        m.sub(Width::D, Reg::A2, Reg::A2, imm(1));
        m.bgt(Reg::A2, "head");
        m.block("exit");
        m.zext(Width::H, Reg::V0, Operand::Reg(Reg::V0));
        m.ret();
        pb.finish(m);
        // 2 ldi + implicit entry→head br, 5 per iteration, zext + ret.
        mixer_insts = 3 + 5 * 4 + 2;
    }

    let mut f = pb.function("main", 0);
    f.block("entry");
    // Initialize the register pool with values of assorted widths.
    for (i, &r) in POOL.iter().enumerate() {
        let v = match i % 4 {
            0 => rng.range_i64(0, 0xFF),
            1 => rng.range_i64(-0x8000, 0x7FFF),
            2 => rng.range_i64(-0x8000_0000, 0x7FFF_FFFF),
            _ => rng.next_u64() as i64,
        };
        f.ldi(r, v);
    }
    f.la(Reg::S0, "scratch");
    f.la(Reg::T8, "table");
    let mut bound = POOL.len() as u64 + 2;

    let mut gen = Gen {
        f: &mut f,
        rng: &mut rng,
        cfg,
        label: 0,
        helper_insts,
        mixer_insts,
        bound: &mut bound,
    };
    for _ in 0..cfg.regions {
        gen.region(0, 1);
    }

    for &r in &POOL {
        f.out(Width::D, r);
    }
    f.halt();
    bound += POOL.len() as u64 + 1;
    pb.finish(f);
    (pb.build().expect("generated program must build"), bound)
}

/// Generation state for one `main` body. `bound` accumulates the step
/// bound: every emitted instruction adds the product of the enclosing
/// loops' trip counts (`mult`).
struct Gen<'a, 'b> {
    f: &'a mut FunctionBuilder,
    rng: &'a mut SplitMix64,
    cfg: &'b GenConfig,
    label: u32,
    helper_insts: u64,
    mixer_insts: u64,
    bound: &'a mut u64,
}

impl Gen<'_, '_> {
    fn fresh(&mut self) -> String {
        self.label += 1;
        format!("g{}", self.label)
    }

    /// One region at counted-loop nesting level `depth`; every emitted
    /// instruction can execute at most `mult` times.
    fn region(&mut self, depth: usize, mult: u64) {
        match self.rng.below(8) {
            0 | 1 => self.straight(mult, self.cfg.max_straight),
            2 => self.counted_loop(depth, mult),
            3 => self.diamond(depth, mult),
            4 if self.cfg.non_affine => self.non_affine_loop(mult),
            5 if self.cfg.memory => {
                self.memory_round_trip(mult);
                if self.cfg.calls && self.rng.chance(1, 2) {
                    self.call(mult);
                }
            }
            6 if self.cfg.memory => self.table_read(mult),
            _ => {
                if self.cfg.calls {
                    self.call(mult);
                } else {
                    self.straight(mult, self.cfg.max_straight);
                }
            }
        }
        // Observable checkpoints: emit an intermediate value so later
        // clobbers cannot hide a divergence inside this region.
        if self.rng.chance(1, 3) {
            let r = *self.rng.pick(&POOL);
            let w = *self.rng.pick(&Width::ALL);
            self.f.out(w, r);
            *self.bound += mult;
        }
    }

    fn rand_operand(&mut self) -> Operand {
        match self.rng.below(6) {
            0 => Operand::Imm(*self.rng.pick(&INTERESTING)),
            1 => Operand::Imm(self.rng.range_i64(-128, 127)),
            _ => Operand::Reg(*self.rng.pick(&POOL)),
        }
    }

    /// A stretch of 1..=`max` random computational instructions over the
    /// pool registers, all widths and (almost) all ALU operations.
    fn straight(&mut self, mult: u64, max: usize) {
        let n = self.rng.below(max as u64) + 1;
        for _ in 0..n {
            let dst = *self.rng.pick(&POOL);
            let a = *self.rng.pick(&POOL);
            let w = *self.rng.pick(&Width::ALL);
            let op2 = self.rand_operand();
            match self.rng.below(16) {
                0 => self.f.add(w, dst, a, op2),
                1 => self.f.sub(w, dst, a, op2),
                2 => self.f.mul(w, dst, a, op2),
                3 => self.f.and(w, dst, a, op2),
                4 => self.f.or(w, dst, a, op2),
                5 => self.f.xor(w, dst, a, op2),
                6 => self.f.andc(w, dst, a, op2),
                7 => self.f.sll(w, dst, a, imm(self.rng.range_i64(0, 7))),
                8 => self.f.srl(w, dst, a, imm(self.rng.range_i64(0, 7))),
                9 => self.f.sra(w, dst, a, imm(self.rng.range_i64(0, 7))),
                10 => self.f.cmp(*self.rng.pick(&CmpKind::ALL), w, dst, a, op2),
                11 => self.f.cmov(*self.rng.pick(&Cond::ALL), w, dst, a, op2),
                12 => self.f.zapnot(dst, a, (self.rng.next_u64() & 0xFF) as u8),
                13 => self.f.ext(w, dst, a, imm(self.rng.range_i64(0, 7))),
                14 => self.f.msk(w, dst, a, imm(self.rng.range_i64(0, 7))),
                _ => {
                    let val = Operand::Reg(a);
                    if self.rng.chance(1, 2) {
                        self.f.sext(w, dst, val)
                    } else {
                        self.f.zext(w, dst, val)
                    }
                }
            };
        }
        *self.bound += n * mult;
    }

    /// `for iter in (0..trips*stride).step_by(stride)` with a nested body
    /// region when depth allows. The iterator feeds the body as an affine
    /// value (scaled into addresses and arithmetic), so the loop analyses
    /// see genuine induction variables.
    fn counted_loop(&mut self, depth: usize, mult: u64) {
        if depth >= self.cfg.max_loop_depth.min(LOOP_REGS.len()) {
            self.straight(mult, self.cfg.max_straight);
            return;
        }
        let (iter, cmp) = LOOP_REGS[depth];
        let head = self.fresh();
        let exit = self.fresh();
        let trips = self.rng.range_i64(1, 10) as u64;
        let stride = self.rng.range_i64(1, 4);
        let limit = trips as i64 * stride;
        self.f.ldi(iter, 0);
        self.f.block(&head); // the preceding block falls through: +1 br
        let inner_mult = mult * trips;
        // Use the induction variable: fold it into a pool register, and
        // with memory enabled, index the quads table with it.
        let dst = *self.rng.pick(&POOL);
        self.f.add(Width::W, dst, dst, iter);
        *self.bound += inner_mult;
        if self.cfg.memory && self.rng.chance(1, 2) {
            self.table_read_indexed(iter, inner_mult);
        }
        let inner_regions = 1 + self.rng.below(2);
        for _ in 0..inner_regions {
            self.region(depth + 1, inner_mult);
        }
        self.f.add(Width::D, iter, iter, imm(stride));
        self.f.cmp(CmpKind::Lt, Width::D, cmp, iter, imm(limit));
        self.f.bne(cmp, &head);
        self.f.block(&exit);
        // init ldi + implicit fall-through br into head, step/cmp/bne.
        *self.bound += 2 * mult + 3 * inner_mult;
    }

    /// A loop whose continue condition depends on computed values (no
    /// affine trip count exists) but whose fuel counter guarantees exit
    /// within `cfg.fuel` iterations.
    fn non_affine_loop(&mut self, mult: u64) {
        let head = self.fresh();
        let check = self.fresh();
        let exit = self.fresh();
        let x = *self.rng.pick(&POOL);
        let fuel = self.cfg.fuel.max(1);
        self.f.ldi(FUEL_REG, fuel as i64);
        self.f.block(&head);
        let inner_mult = mult * fuel;
        self.straight(inner_mult, self.cfg.max_straight.min(4));
        // Non-affine induction: x = (x * m + c) masked to a byte-ish range.
        let m = self.rng.range_i64(3, 9);
        let c = self.rng.range_i64(1, 63);
        self.f.mul(Width::W, x, x, imm(m));
        self.f.add(Width::W, x, x, imm(c));
        self.f.srl(Width::W, x, x, imm(self.rng.range_i64(0, 3)));
        // Fuel: unconditional progress towards exit.
        self.f.sub(Width::D, FUEL_REG, FUEL_REG, imm(1));
        self.f.ble(FUEL_REG, &exit);
        self.f.block(&check);
        // Value-dependent continue: loop while the low bits are non-zero.
        let mask = [3i64, 7, 15][self.rng.below(3) as usize];
        self.f.and(Width::D, FUEL_SCRATCH, x, imm(mask));
        self.f.bne(FUEL_SCRATCH, &head);
        self.f.block(&exit);
        // fuel ldi + implicit fall-through br into head, loop machinery.
        *self.bound += 2 * mult + 7 * inner_mult;
    }

    /// If/else over a random pool register with independent region bodies.
    fn diamond(&mut self, depth: usize, mult: u64) {
        let then_l = self.fresh();
        let else_l = self.fresh();
        let join = self.fresh();
        let test = *self.rng.pick(&POOL);
        let cond = *self.rng.pick(&Cond::ALL);
        self.f.bc_to(cond, test, &then_l, &else_l);
        *self.bound += mult;
        self.f.block(&else_l);
        if depth < self.cfg.max_loop_depth && self.rng.chance(1, 4) {
            self.region(depth + 1, mult);
        } else {
            self.straight(mult, self.cfg.max_straight.min(4));
        }
        self.f.br(&join);
        self.f.block(&then_l);
        self.straight(mult, self.cfg.max_straight.min(4));
        // the else-side br + the then side's implicit fall-through br.
        *self.bound += 2 * mult;
        self.f.block(&join);
    }

    /// Store a pool register to the scratch buffer and load it back at a
    /// random width/signedness (may be a different slot: stale data is
    /// zero-initialized, so still deterministic).
    fn memory_round_trip(&mut self, mult: u64) {
        let slot = self.rng.range_i64(0, SCRATCH_SLOTS - 1) as i32 * 8;
        let w = *self.rng.pick(&Width::ALL);
        let data = *self.rng.pick(&POOL);
        let dst = *self.rng.pick(&POOL);
        self.f.st(w, data, Reg::S0, slot);
        if self.rng.chance(1, 2) {
            self.f.ld(w, dst, Reg::S0, slot);
        } else {
            self.f.ldu(w, dst, Reg::S0, slot);
        }
        *self.bound += 2 * mult;
    }

    /// Load a constant-table entry at a fixed slot.
    fn table_read(&mut self, mult: u64) {
        let slot = self.rng.range_i64(0, TABLE_SLOTS - 1) as i32 * 8;
        let dst = *self.rng.pick(&POOL);
        let w = *self.rng.pick(&Width::ALL);
        if self.rng.chance(1, 2) {
            self.f.ld(w, dst, Reg::T8, slot);
        } else {
            self.f.ldu(w, dst, Reg::T8, slot);
        }
        *self.bound += mult;
    }

    /// Load `table[index & (TABLE_SLOTS-1)]` — a bounded computed address
    /// driven by a loop induction variable.
    fn table_read_indexed(&mut self, index: Reg, mult: u64) {
        let addr = *self.rng.pick(&POOL);
        let dst = *self.rng.pick(&POOL);
        self.f.and(Width::D, addr, index, imm(TABLE_SLOTS - 1));
        self.f.sll(Width::D, addr, addr, imm(3));
        self.f.add(Width::D, addr, addr, Reg::T8);
        self.f.ld(Width::D, dst, addr, 0);
        *self.bound += 4 * mult;
    }

    /// Call `helper` or `mixer` with pool arguments and fold the result
    /// back into the pool.
    fn call(&mut self, mult: u64) {
        let a = *self.rng.pick(&POOL);
        let b = *self.rng.pick(&POOL);
        self.f.mov(Width::D, Reg::A0, a);
        self.f.mov(Width::D, Reg::A1, b);
        let callee_insts = if self.rng.chance(1, 3) {
            self.f.jsr("mixer");
            self.mixer_insts
        } else {
            self.f.jsr("helper");
            self.helper_insts
        };
        let dst = *self.rng.pick(&POOL);
        self.f.mov(Width::D, dst, Reg::V0);
        *self.bound += (4 + callee_insts) * mult;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_isa::Op;

    #[test]
    fn generated_programs_verify() {
        for seed in 0..30 {
            let p = generate_program(&GenConfig { seed, ..Default::default() });
            p.verify().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_program(&GenConfig { seed: 7, ..Default::default() });
        let b = generate_program(&GenConfig { seed: 7, ..Default::default() });
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_program(&GenConfig { seed: 1, ..Default::default() });
        let b = generate_program(&GenConfig { seed: 2, ..Default::default() });
        assert_ne!(a, b);
    }

    #[test]
    fn respects_feature_toggles() {
        let p = generate_program(&GenConfig {
            seed: 3,
            calls: false,
            memory: false,
            ..Default::default()
        });
        assert_eq!(p.funcs.len(), 1);
        for (_, i) in p.insts() {
            assert!(!i.op.is_mem(), "memory op generated despite memory=false");
            assert_ne!(i.op, Op::Jsr);
        }
    }

    #[test]
    fn loop_bodies_never_touch_control_registers() {
        // The termination argument rests on loop iterators and the fuel
        // counter being written only by the loop machinery itself: exactly
        // one `ldi` (the init) plus one add/sub (the step) per register
        // mention as a destination... rather than auditing counts, check
        // the structural core: POOL instructions never define them.
        for seed in 0..20u64 {
            let p = generate_program(&GenConfig { seed, ..Default::default() });
            let control: Vec<Reg> = LOOP_REGS
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .chain([FUEL_REG, FUEL_SCRATCH, Reg::S0, Reg::T8])
                .collect();
            for (_, i) in p.insts() {
                if let Some(d) = i.def() {
                    if control.contains(&d) {
                        // Control registers are only defined by the loop
                        // machinery ops the generator emits for them.
                        assert!(
                            matches!(
                                i.op,
                                Op::Ldi | Op::Add | Op::Sub | Op::And | Op::Sll | Op::Cmp(_)
                            ),
                            "seed {seed}: unexpected {} defining control reg {d}",
                            i.op
                        );
                    }
                }
            }
        }
    }
}
