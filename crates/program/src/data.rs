//! The static data segment: named, initialized global memory.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Base address of the global data segment.
///
/// Global addresses need 37 bits — like the 33..40-bit Alpha addresses of
/// the paper's Figure 12, they need exactly 5 significant bytes and
/// produce the distribution's second peak (and motivate the 5-byte class
/// of the §4.6 size-compression scheme).
pub const GLOBAL_BASE: u64 = 0x12_0000_0000;

/// Initial stack pointer (the stack grows down from here).
pub const STACK_BASE: u64 = 0x14_0000_0000;

/// Nominal stack size reserved below [`STACK_BASE`].
pub const STACK_SIZE: u64 = 1 << 20;

/// One named data item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataItem {
    /// Symbol name.
    pub name: String,
    /// Assigned absolute address.
    pub addr: u64,
    /// Initial contents (zero-filled regions use an explicit length).
    pub bytes: Vec<u8>,
}

/// The program's static data segment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataSegment {
    items: Vec<DataItem>,
    by_name: HashMap<String, usize>,
    next_addr: u64,
}

impl DataSegment {
    /// An empty data segment starting at [`GLOBAL_BASE`].
    pub fn new() -> DataSegment {
        DataSegment { items: Vec::new(), by_name: HashMap::new(), next_addr: GLOBAL_BASE }
    }

    /// Define a symbol with initial `bytes`; returns its address.
    ///
    /// Items are laid out sequentially with 8-byte alignment.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already defined.
    pub fn define(&mut self, name: impl Into<String>, bytes: Vec<u8>) -> u64 {
        let name = name.into();
        assert!(!self.by_name.contains_key(&name), "data symbol defined twice: {name}");
        let addr = self.next_addr;
        self.next_addr = (addr + bytes.len() as u64 + 7) & !7;
        self.by_name.insert(name.clone(), self.items.len());
        self.items.push(DataItem { name, addr, bytes });
        addr
    }

    /// Define a zero-initialized region of `len` bytes.
    pub fn define_zeroed(&mut self, name: impl Into<String>, len: usize) -> u64 {
        self.define(name, vec![0; len])
    }

    /// Define a region of little-endian 64-bit words.
    pub fn define_quads(&mut self, name: impl Into<String>, words: &[i64]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.define(name, bytes)
    }

    /// The address of `name`, if defined.
    pub fn address_of(&self, name: &str) -> Option<u64> {
        self.by_name.get(name).map(|&i| self.items[i].addr)
    }

    /// All items in layout order.
    pub fn items(&self) -> &[DataItem] {
        &self.items
    }

    /// Total initialized size in bytes (including alignment padding).
    pub fn size(&self) -> u64 {
        self.next_addr - GLOBAL_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_aligned_and_sequential() {
        let mut d = DataSegment::new();
        let a = d.define("a", vec![1, 2, 3]);
        let b = d.define_zeroed("b", 16);
        assert_eq!(a, GLOBAL_BASE);
        assert_eq!(b, GLOBAL_BASE + 8); // 3 bytes rounded up to 8
        assert_eq!(d.address_of("b"), Some(b));
        assert_eq!(d.address_of("c"), None);
        assert_eq!(d.size(), 24);
    }

    #[test]
    fn quads_encode_little_endian() {
        let mut d = DataSegment::new();
        d.define_quads("t", &[1, -1]);
        let item = &d.items()[0];
        assert_eq!(item.bytes.len(), 16);
        assert_eq!(item.bytes[0], 1);
        assert_eq!(&item.bytes[8..16], &[0xFF; 8]);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_symbol_panics() {
        let mut d = DataSegment::new();
        d.define_zeroed("x", 8);
        d.define_zeroed("x", 8);
    }
}
