//! # og-profile: value profiling for value range specialization
//!
//! Implements the profiling machinery of §3.3 of the paper, which follows
//! the value-profiling scheme of Calder, Feller & Eustace (MICRO-30):
//!
//! > The technique adds a function in the program that is called at the
//! > profiling points and stores the actual value in a fixed-size table
//! > every time it is called. If the value is already in the table, the
//! > count of that value is incremented. Otherwise, if the table is not
//! > full, the value is added. If the table is full the value is ignored.
//! > Periodically, the table is cleaned by evicting the least frequently
//! > used values from the table […]. The total number of times the
//! > profiling point is executed is also kept in a separate counter.
//!
//! [`ValueProfiler`] has two equivalent observation channels: it plugs
//! into the emulator as a [`og_vm::Watcher`], or — via
//! [`ValueProfiler::sink`] — as a [`og_vm::TraceSink`] riding the same
//! streamed committed-path interface that drives the timing simulator
//! (this is how VRS profiles its training runs). After a training run,
//! each watched site yields [`RangeEstimate`]s — candidate `[min, max]`
//! ranges with their observed coverage frequency — which VRS weighs with
//! its energy cost/benefit model.
//!
//! ```
//! use og_profile::{ProfileConfig, ValueTable};
//!
//! let mut t = ValueTable::new(&ProfileConfig::default());
//! for v in [5, 5, 5, 6, 900] {
//!     t.record(v);
//! }
//! let ranges = t.candidate_ranges(5);
//! // the hottest single value is 5
//! assert_eq!(ranges[0].min, 5);
//! assert_eq!(ranges[0].max, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profiler;
mod table;

pub use profiler::{ProfileSink, SiteProfile, ValueProfiler};
pub use table::{ProfileConfig, RangeEstimate, ValueTable};
