//! The fixed-size value table with LFU cleaning.

use serde::{Deserialize, Serialize};

/// Profiler tuning parameters (defaults follow the Calder et al. scheme
/// with a small table, as in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Maximum distinct values tracked per site.
    pub table_size: usize,
    /// Every `clean_period` recordings, evict the least frequently used
    /// half of the table so new values can enter.
    pub clean_period: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { table_size: 8, clean_period: 2048 }
    }
}

/// A candidate specialization range extracted from a profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeEstimate {
    /// Lower bound (inclusive).
    pub min: i64,
    /// Upper bound (inclusive).
    pub max: i64,
    /// Fraction of site executions whose value fell in `[min, max]`
    /// (the paper's `Freq(min,max)`), estimated from the table contents.
    pub freq: f64,
}

/// One profiling site's fixed-size value table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueTable {
    entries: Vec<(i64, u64)>,
    table_size: usize,
    clean_period: u64,
    since_clean: u64,
    /// Total number of recordings (the separate execution counter of the
    /// Calder scheme).
    total: u64,
}

impl ValueTable {
    /// An empty table.
    pub fn new(config: &ProfileConfig) -> ValueTable {
        ValueTable {
            entries: Vec::with_capacity(config.table_size),
            table_size: config.table_size.max(1),
            clean_period: config.clean_period.max(1),
            since_clean: 0,
            total: 0,
        }
    }

    /// Record one observed value.
    pub fn record(&mut self, value: i64) {
        self.total += 1;
        self.since_clean += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == value) {
            e.1 += 1;
        } else if self.entries.len() < self.table_size {
            self.entries.push((value, 1));
        }
        // else: table full, value ignored (until the next cleaning).
        if self.since_clean >= self.clean_period {
            self.clean();
        }
    }

    /// Evict the least frequently used half of the table.
    fn clean(&mut self) {
        self.since_clean = 0;
        self.entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let keep = self.table_size.div_ceil(2);
        self.entries.truncate(keep);
    }

    /// Total times this site executed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Tracked `(value, count)` pairs, hottest first.
    pub fn entries(&self) -> Vec<(i64, u64)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Candidate specialization ranges, most promising first:
    ///
    /// 1. the single hottest value (`min == max`, enabling constant
    ///    propagation in the specialized clone),
    /// 2. hulls of the top-k hottest values for growing k.
    ///
    /// At most `max_candidates` estimates are returned. Frequencies are
    /// estimated against the total execution count, so values that were
    /// ignored while the table was full conservatively count as
    /// out-of-range.
    pub fn candidate_ranges(&self, max_candidates: usize) -> Vec<RangeEstimate> {
        let entries = self.entries();
        if entries.is_empty() || self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut covered = 0u64;
        let (mut min, mut max) = (i64::MAX, i64::MIN);
        for (i, &(v, c)) in entries.iter().enumerate() {
            covered += c;
            min = min.min(v);
            max = max.max(v);
            out.push(RangeEstimate { min, max, freq: covered as f64 / self.total as f64 });
            if i + 1 >= max_candidates {
                break;
            }
        }
        // Deduplicate identical hulls (e.g. when a wider top-k adds a value
        // already inside the hull, only the frequency improves).
        out.dedup_by(|b, a| {
            if a.min == b.min && a.max == b.max {
                a.freq = a.freq.max(b.freq);
                true
            } else {
                false
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: usize, period: u64) -> ProfileConfig {
        ProfileConfig { table_size: size, clean_period: period }
    }

    #[test]
    fn counts_repeated_values() {
        let mut t = ValueTable::new(&cfg(4, 1000));
        for _ in 0..10 {
            t.record(7);
        }
        t.record(9);
        assert_eq!(t.total(), 11);
        assert_eq!(t.entries()[0], (7, 10));
        assert_eq!(t.entries()[1], (9, 1));
    }

    #[test]
    fn full_table_ignores_new_values() {
        let mut t = ValueTable::new(&cfg(2, 1000));
        t.record(1);
        t.record(2);
        t.record(3); // ignored
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn cleaning_evicts_lfu_half() {
        let mut t = ValueTable::new(&cfg(4, 8));
        for _ in 0..5 {
            t.record(10);
        }
        t.record(20);
        t.record(30);
        t.record(40); // 8th record triggers cleaning

        // top half (2 entries) kept: 10 (count 5) and the tie-broken next.
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.entries()[0].0, 10);
        // a new value can now enter
        t.record(50);
        assert!(t.entries().iter().any(|e| e.0 == 50));
    }

    #[test]
    fn single_value_range_first() {
        let mut t = ValueTable::new(&cfg(8, 1 << 20));
        for _ in 0..90 {
            t.record(0);
        }
        for _ in 0..10 {
            t.record(100);
        }
        let r = t.candidate_ranges(4);
        assert_eq!(r[0].min, 0);
        assert_eq!(r[0].max, 0);
        assert!((r[0].freq - 0.9).abs() < 1e-12);
        assert_eq!(r[1].min, 0);
        assert_eq!(r[1].max, 100);
        assert!((r[1].freq - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ignored_values_lower_coverage() {
        let mut t = ValueTable::new(&cfg(1, 1 << 20));
        t.record(5);
        t.record(6); // ignored: table of size 1
        t.record(5);
        let r = t.candidate_ranges(4);
        assert_eq!(r.len(), 1);
        assert!((r[0].freq - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_yields_no_ranges() {
        let t = ValueTable::new(&cfg(4, 16));
        assert!(t.candidate_ranges(4).is_empty());
    }

    #[test]
    fn hull_dedup_keeps_best_freq() {
        let mut t = ValueTable::new(&cfg(8, 1 << 20));
        for _ in 0..4 {
            t.record(10);
        }
        for _ in 0..3 {
            t.record(20);
        }
        for _ in 0..2 {
            t.record(15); // inside [10,20] hull
        }
        let r = t.candidate_ranges(8);
        // ranges: [10,10], [10,20] (k=2), [10,20] (k=3, deduped with better freq)
        assert_eq!(r.len(), 2);
        assert_eq!((r[1].min, r[1].max), (10, 20));
        assert!((r[1].freq - 1.0).abs() < 1e-12);
    }
}
