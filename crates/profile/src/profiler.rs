//! The emulator-attached value profiler.

use crate::{ProfileConfig, RangeEstimate, ValueTable};
use og_program::{InstRef, Layout};
use og_vm::{TraceRecord, TraceSink, Watcher};
use std::collections::{HashMap, HashSet};

/// The profile gathered at one watched instruction.
#[derive(Debug, Clone)]
pub struct SiteProfile {
    table: ValueTable,
}

impl SiteProfile {
    /// Total executions of the site during the training run.
    pub fn total(&self) -> u64 {
        self.table.total()
    }

    /// Candidate specialization ranges, most promising first (see
    /// [`ValueTable::candidate_ranges`]).
    pub fn candidate_ranges(&self, max_candidates: usize) -> Vec<RangeEstimate> {
        self.table.candidate_ranges(max_candidates)
    }

    /// The underlying value table.
    pub fn table(&self) -> &ValueTable {
        &self.table
    }
}

/// Profiles the output values of a chosen set of instructions during an
/// emulator run (§3.3: only pre-filtered candidates are profiled, to keep
/// profiling cost down).
///
/// ```
/// use og_profile::{ProfileConfig, ValueProfiler};
/// use og_program::{ProgramBuilder, InstRef, FuncId, BlockId, imm};
/// use og_isa::{Reg, Width};
/// use og_vm::{Vm, RunConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// f.block("entry");
/// f.ldi(Reg::T0, 7);
/// f.halt();
/// pb.finish(f);
/// let p = pb.build().unwrap();
///
/// let site = InstRef::new(FuncId(0), BlockId(0), 0);
/// let mut profiler = ValueProfiler::new(ProfileConfig::default(), [site]);
/// let mut vm = Vm::new(&p, RunConfig::default());
/// vm.run_watched(&mut profiler).unwrap();
/// assert_eq!(profiler.site(site).unwrap().total(), 1);
/// ```
#[derive(Debug)]
pub struct ValueProfiler {
    config: ProfileConfig,
    watched: HashSet<InstRef>,
    sites: HashMap<InstRef, SiteProfile>,
}

impl ValueProfiler {
    /// Create a profiler watching the given instruction sites.
    pub fn new(config: ProfileConfig, watched: impl IntoIterator<Item = InstRef>) -> ValueProfiler {
        ValueProfiler { config, watched: watched.into_iter().collect(), sites: HashMap::new() }
    }

    /// Number of watched sites.
    pub fn watched_count(&self) -> usize {
        self.watched.len()
    }

    /// Record one observation of `value` at `at` (ignored unless the
    /// site is watched). Both observation channels — the in-VM
    /// [`Watcher`] and the streaming [`ProfileSink`] — funnel here, so
    /// they produce identical profiles for identical runs.
    pub fn observe(&mut self, at: InstRef, value: i64) {
        if !self.watched.contains(&at) {
            return;
        }
        let config = &self.config;
        self.sites
            .entry(at)
            .or_insert_with(|| SiteProfile { table: ValueTable::new(config) })
            .table
            .record(value);
    }

    /// Adapt this profiler to the VM's streaming [`TraceSink`]
    /// interface: the returned sink resolves each record's `pc` back to
    /// the watched site and feeds its `dst_value` into the profile.
    /// `layout` must be the layout of the program being emulated (the
    /// one `Vm::new` computes internally via `Program::layout`).
    pub fn sink(&mut self, layout: &Layout) -> ProfileSink<'_> {
        let site_of_pc = self.watched.iter().map(|&at| (layout.addr_of(at), at)).collect();
        ProfileSink { site_of_pc, profiler: self }
    }

    /// The profile gathered at `site`, if it executed at least once.
    pub fn site(&self, site: InstRef) -> Option<&SiteProfile> {
        self.sites.get(&site)
    }

    /// Iterate over all sites that executed.
    pub fn sites(&self) -> impl Iterator<Item = (InstRef, &SiteProfile)> {
        self.sites.iter().map(|(&k, v)| (k, v))
    }
}

impl Watcher for ValueProfiler {
    fn record(&mut self, at: InstRef, value: i64) {
        self.observe(at, value);
    }
}

/// A [`TraceSink`] adapter over a [`ValueProfiler`], produced by
/// [`ValueProfiler::sink`]. It lets the profiler ride the same streamed
/// committed-path interface the timing simulator consumes, so a training
/// run drives profiling without the VM materializing anything:
///
/// ```
/// use og_profile::{ProfileConfig, ValueProfiler};
/// use og_program::{ProgramBuilder, InstRef, FuncId, BlockId};
/// use og_isa::Reg;
/// use og_vm::{Vm, RunConfig};
///
/// let mut pb = ProgramBuilder::new();
/// let mut f = pb.function("main", 0);
/// f.block("entry");
/// f.ldi(Reg::T0, 7);
/// f.halt();
/// pb.finish(f);
/// let p = pb.build().unwrap();
///
/// let site = InstRef::new(FuncId(0), BlockId(0), 0);
/// let mut profiler = ValueProfiler::new(ProfileConfig::default(), [site]);
/// let mut vm = Vm::new(&p, RunConfig::default());
/// vm.run_streamed(&mut profiler.sink(&p.layout())).unwrap();
/// assert_eq!(profiler.site(site).unwrap().total(), 1);
/// ```
pub struct ProfileSink<'a> {
    profiler: &'a mut ValueProfiler,
    site_of_pc: HashMap<u64, InstRef>,
}

impl TraceSink for ProfileSink<'_> {
    fn record(&mut self, rec: &TraceRecord) {
        let Some(value) = rec.dst_value else { return };
        if let Some(&at) = self.site_of_pc.get(&rec.pc) {
            self.profiler.observe(at, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use og_isa::{CmpKind, Reg, Width};
    use og_program::{imm, BlockId, FuncId, ProgramBuilder};
    use og_vm::{RunConfig, Vm};

    /// A loop whose body computes `t2 = t0 & 0xF` (16 distinct values) and
    /// `t3 = 7` (constant).
    fn profiled_program() -> og_program::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.block("entry");
        f.ldi(Reg::T0, 0);
        f.block("loop");
        f.and(Width::D, Reg::T2, Reg::T0, imm(0xF)); // site (b1, 0)
        f.ldi(Reg::T3, 7); // site (b1, 1)
        f.add(Width::D, Reg::T0, Reg::T0, imm(1));
        f.cmp(CmpKind::Lt, Width::D, Reg::T1, Reg::T0, imm(100));
        f.bne(Reg::T1, "loop");
        f.block("exit");
        f.halt();
        pb.finish(f);
        pb.build().unwrap()
    }

    #[test]
    fn profiles_only_watched_sites() {
        let p = profiled_program();
        let and_site = InstRef::new(FuncId(0), BlockId(1), 0);
        let ldi_site = InstRef::new(FuncId(0), BlockId(1), 1);
        let mut prof = ValueProfiler::new(ProfileConfig::default(), [and_site]);
        let mut vm = Vm::new(&p, RunConfig::default());
        vm.run_watched(&mut prof).unwrap();
        assert!(prof.site(and_site).is_some());
        assert!(prof.site(ldi_site).is_none());
        assert_eq!(prof.site(and_site).unwrap().total(), 100);
    }

    #[test]
    fn constant_site_yields_tight_single_value_range() {
        let p = profiled_program();
        let ldi_site = InstRef::new(FuncId(0), BlockId(1), 1);
        let mut prof = ValueProfiler::new(ProfileConfig::default(), [ldi_site]);
        let mut vm = Vm::new(&p, RunConfig::default());
        vm.run_watched(&mut prof).unwrap();
        let ranges = prof.site(ldi_site).unwrap().candidate_ranges(4);
        assert_eq!(ranges.len(), 1);
        assert_eq!((ranges[0].min, ranges[0].max), (7, 7));
        assert!((ranges[0].freq - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sink_profiling_matches_watcher_profiling() {
        let p = profiled_program();
        let and_site = InstRef::new(FuncId(0), BlockId(1), 0);
        let ldi_site = InstRef::new(FuncId(0), BlockId(1), 1);
        // Watcher channel.
        let mut watched = ValueProfiler::new(ProfileConfig::default(), [and_site, ldi_site]);
        let mut vm = Vm::new(&p, RunConfig::default());
        vm.run_watched(&mut watched).unwrap();
        // Streaming channel.
        let mut streamed = ValueProfiler::new(ProfileConfig::default(), [and_site, ldi_site]);
        let mut vm = Vm::new(&p, RunConfig::default());
        vm.run_streamed(&mut streamed.sink(&p.layout())).unwrap();
        for site in [and_site, ldi_site] {
            let w = watched.site(site).unwrap();
            let s = streamed.site(site).unwrap();
            assert_eq!(w.total(), s.total());
            let wr = w.candidate_ranges(16);
            let sr = s.candidate_ranges(16);
            assert_eq!(wr.len(), sr.len());
            for (a, b) in wr.iter().zip(&sr) {
                assert_eq!((a.min, a.max), (b.min, b.max));
                assert!((a.freq - b.freq).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn varied_site_yields_hull_ranges() {
        let p = profiled_program();
        let and_site = InstRef::new(FuncId(0), BlockId(1), 0);
        let mut prof =
            ValueProfiler::new(ProfileConfig { table_size: 16, clean_period: 1 << 20 }, [and_site]);
        let mut vm = Vm::new(&p, RunConfig::default());
        vm.run_watched(&mut prof).unwrap();
        let site = prof.site(and_site).unwrap();
        let ranges = site.candidate_ranges(16);
        // The widest hull covers all 16 values with frequency 1.
        let last = ranges.last().unwrap();
        assert_eq!((last.min, last.max), (0, 15));
        assert!((last.freq - 1.0).abs() < 1e-9);
    }
}
